#include "gpusim/cache.hpp"

#include <algorithm>

namespace cumf::gpusim {

namespace {
bool is_pow2(std::int64_t x) noexcept { return x > 0 && (x & (x - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(const CacheConfig& config) : config_(config) {
  CUMF_EXPECTS(config_.size_bytes > 0, "cache size must be positive");
  CUMF_EXPECTS(is_pow2(config_.line_bytes), "line size must be a power of 2");
  CUMF_EXPECTS(config_.ways > 0, "cache must have at least one way");
  // Arbitrary set counts are allowed (real L1s are often non-power-of-two
  // when partitioned); indexing uses modulo rather than bit masking.
  sets_ = config_.size_bytes / (static_cast<std::int64_t>(config_.line_bytes) *
                                config_.ways);
  CUMF_EXPECTS(sets_ > 0, "cache smaller than one set");
  tags_.assign(static_cast<std::size_t>(sets_) * config_.ways, 0);
  stamps_.assign(tags_.size(), 0);
}

bool CacheLevel::access(std::uint64_t address) {
  const std::uint64_t line =
      address / static_cast<std::uint64_t>(config_.line_bytes);
  const std::uint64_t set = line % static_cast<std::uint64_t>(sets_);
  const std::uint64_t tag = line + 1;  // +1 so tag 0 means "invalid"
  const std::size_t base = static_cast<std::size_t>(set) *
                           static_cast<std::size_t>(config_.ways);
  ++clock_;

  int victim = 0;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (int w = 0; w < config_.ways; ++w) {
    if (tags_[base + w] == tag) {
      stamps_[base + w] = clock_;
      ++hits_;
      return true;
    }
    if (stamps_[base + w] < oldest) {
      oldest = stamps_[base + w];
      victim = w;
    }
  }
  tags_[base + victim] = tag;
  stamps_[base + victim] = clock_;
  ++misses_;
  return false;
}

void CacheLevel::flush() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  clock_ = hits_ = misses_ = 0;
}

double CacheLevel::hit_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

CacheHierarchy::CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                               bool l1_enabled)
    : l1_(l1), l2_(l2), l1_enabled_(l1_enabled) {}

MemLevel CacheHierarchy::access(std::uint64_t address) {
  ++total_;
  if (l1_enabled_ && l1_.access(address)) {
    ++from_l1_;
    return MemLevel::L1;
  }
  if (l2_.access(address)) {
    ++from_l2_;
    return MemLevel::L2;
  }
  ++from_dram_;
  return MemLevel::Dram;
}

std::uint64_t CacheHierarchy::served_by(MemLevel level) const {
  switch (level) {
    case MemLevel::L1:
      return from_l1_;
    case MemLevel::L2:
      return from_l2_;
    case MemLevel::Dram:
      return from_dram_;
  }
  return 0;
}

void CacheHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  total_ = from_l1_ = from_l2_ = from_dram_ = 0;
}

}  // namespace cumf::gpusim
