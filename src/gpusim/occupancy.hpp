// Occupancy calculator (paper Observation 2).
//
// The get_hermitian kernel deliberately over-uses registers to keep A_u tiles
// on-chip; the resulting low occupancy is *why* non-coalesced cache-assisted
// loads win (Solution 2). The paper's worked example — f = 100 needs 168
// registers/thread with 64-thread blocks, so an SM holds 65536/(168·64) ≈ 6
// blocks instead of the 32-block capacity — is a unit test of this module.
#pragma once

#include "gpusim/device.hpp"

namespace cumf::gpusim {

/// Static resource demands of one kernel thread-block.
struct KernelResources {
  int regs_per_thread = 0;
  int threads_per_block = 0;
  int smem_per_block_bytes = 0;
};

enum class OccupancyLimit { Registers, SharedMemory, Threads, Blocks };

struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  double fraction = 0.0;  ///< active warps / max warps
  OccupancyLimit limited_by = OccupancyLimit::Blocks;
};

Occupancy compute_occupancy(const DeviceSpec& dev, const KernelResources& k);

/// Register demand of the paper's get_hermitian thread (§III): each thread
/// owns a T×T register tile of A_u plus staging/loop registers.
/// The paper's instance (f=100, tile=10) yields 168.
int hermitian_regs_per_thread(int f, int tile);

/// Thread-block size used by get_hermitian for a given f and tile size:
/// one thread per lower-triangular tile pair is rounded up to whole warps.
int hermitian_threads_per_block(int f, int tile, int warp_size = 32);

const char* to_string(OccupancyLimit limit);

}  // namespace cumf::gpusim
