#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf::gpusim {

Occupancy compute_occupancy(const DeviceSpec& dev, const KernelResources& k) {
  CUMF_EXPECTS(k.regs_per_thread > 0 && k.threads_per_block > 0,
               "kernel resources must be positive");
  CUMF_EXPECTS(k.threads_per_block % dev.warp_size == 0,
               "block size must be a whole number of warps");

  const int regs_per_block = k.regs_per_thread * k.threads_per_block;
  const int by_regs = dev.regs_per_sm / regs_per_block;
  const int by_smem = k.smem_per_block_bytes > 0
                          ? dev.smem_per_sm_bytes / k.smem_per_block_bytes
                          : dev.max_blocks_per_sm;
  const int by_threads = dev.max_threads_per_sm / k.threads_per_block;
  const int by_blocks = dev.max_blocks_per_sm;

  Occupancy occ;
  occ.blocks_per_sm = std::min({by_regs, by_smem, by_threads, by_blocks});
  if (occ.blocks_per_sm == by_regs) {
    occ.limited_by = OccupancyLimit::Registers;
  }
  if (occ.blocks_per_sm == by_smem && by_smem < by_regs) {
    occ.limited_by = OccupancyLimit::SharedMemory;
  }
  if (occ.blocks_per_sm == by_threads && by_threads < std::min(by_regs, by_smem)) {
    occ.limited_by = OccupancyLimit::Threads;
  }
  if (occ.blocks_per_sm == by_blocks &&
      by_blocks < std::min({by_regs, by_smem, by_threads})) {
    occ.limited_by = OccupancyLimit::Blocks;
  }
  occ.warps_per_sm =
      occ.blocks_per_sm * (k.threads_per_block / dev.warp_size);
  const int max_warps = dev.max_threads_per_sm / dev.warp_size;
  occ.fraction = static_cast<double>(occ.warps_per_sm) / max_warps;
  return occ;
}

int hermitian_regs_per_thread(int f, int tile) {
  CUMF_EXPECTS(f > 0 && tile > 0 && f % tile == 0,
               "f must be a positive multiple of the tile size");
  // Each thread accumulates one T×T sub-block of A_u in registers (T² regs)
  // plus staging pointers, loop counters and the two θ fragments — a fixed
  // overhead of 68 registers measured on the open-source cuMF kernels.
  // The paper's example: f=100, T=10 → 100 + 68 = 168 regs/thread.
  return tile * tile + 68;
}

int hermitian_threads_per_block(int f, int tile, int warp_size) {
  CUMF_EXPECTS(f > 0 && tile > 0 && f % tile == 0,
               "f must be a positive multiple of the tile size");
  const int nt = f / tile;                      // tiles per dimension
  const int tri = nt * (nt + 1) / 2;            // lower-triangular tile pairs
  const int rounded = (tri + warp_size - 1) / warp_size * warp_size;
  // f=100, T=10 → 55 tile pairs → 64 threads, the paper's block size.
  return rounded;
}

const char* to_string(OccupancyLimit limit) {
  switch (limit) {
    case OccupancyLimit::Registers:
      return "registers";
    case OccupancyLimit::SharedMemory:
      return "shared-memory";
    case OccupancyLimit::Threads:
      return "threads";
    case OccupancyLimit::Blocks:
      return "blocks";
  }
  return "unknown";
}

}  // namespace cumf::gpusim
