// Set-associative LRU cache simulation.
//
// Solution 2 of the paper rests on a cache claim: under low occupancy the
// non-coalesced load pattern's working set fits in L1/L2, so the caches act
// as a "coalescing buffer" and the unconventional pattern wins. Rather than
// assert that, we simulate it: address traces of both load schemes run
// through this L1→L2 hierarchy and the measured hit rates feed the timing
// model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace cumf::gpusim {

struct CacheConfig {
  std::int64_t size_bytes = 0;
  int line_bytes = 128;
  int ways = 4;
};

/// One level of set-associative cache with true-LRU replacement.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config);

  /// Presents one line-aligned address; returns true on hit. Misses insert
  /// the line (allocate-on-miss) and evict the LRU way.
  bool access(std::uint64_t address);

  void flush();

  std::int64_t sets() const noexcept { return sets_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  double hit_rate() const noexcept;

 private:
  CacheConfig config_;
  std::int64_t sets_ = 0;
  // tags_[set * ways + way]; stamp 0 == invalid.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Where a memory access was served from.
enum class MemLevel { L1, L2, Dram };

/// Two-level hierarchy; the L1 can be bypassed (the paper's noL1 / coalesced
/// configurations, matching CUDA's -dlcm=cg compile flag).
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                 bool l1_enabled);

  MemLevel access(std::uint64_t address);

  std::uint64_t served_by(MemLevel level) const;
  std::uint64_t accesses() const noexcept { return total_; }
  bool l1_enabled() const noexcept { return l1_enabled_; }

  void flush();

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  bool l1_enabled_;
  std::uint64_t total_ = 0;
  std::uint64_t from_l1_ = 0;
  std::uint64_t from_l2_ = 0;
  std::uint64_t from_dram_ = 0;
};

}  // namespace cumf::gpusim
