#include "gpusim/sim_clock.hpp"

#include "common/check.hpp"

namespace cumf::gpusim {

void SimClock::charge(const std::string& kernel, double seconds) {
  CUMF_EXPECTS(seconds >= 0.0, "cannot charge negative time");
  buckets_[kernel] += seconds;
  total_ += seconds;
}

double SimClock::of(const std::string& kernel) const {
  const auto it = buckets_.find(kernel);
  return it == buckets_.end() ? 0.0 : it->second;
}

void SimClock::reset() {
  buckets_.clear();
  total_ = 0.0;
}

}  // namespace cumf::gpusim
