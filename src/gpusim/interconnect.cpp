#include "gpusim/interconnect.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf::gpusim {

LinkSpec LinkSpec::pcie3() {
  return LinkSpec{"PCIe 3.0 x16", 12.0e9, 10e-6};
}

LinkSpec LinkSpec::pcie3_x8() {
  // Half-lane PCIe: what each card actually gets in multi-GPU boxes that
  // split a x16 root port, and the transfer-bound corner of the out-of-core
  // stream model.
  return LinkSpec{"PCIe 3.0 x8", 6.0e9, 10e-6};
}

LinkSpec LinkSpec::nvlink() {
  // 40 GB/s per link, 4 links per GPU (paper §I); a ring all-gather uses
  // one link per neighbour, so the per-direction budget is one link.
  return LinkSpec{"NVLink", 40.0e9, 5e-6};
}

LinkSpec link_by_name(const std::string& name) {
  if (name == "pcie3") {
    return LinkSpec::pcie3();
  }
  if (name == "pcie3_x8") {
    return LinkSpec::pcie3_x8();
  }
  CUMF_EXPECTS(name == "nvlink",
               "unknown link (expected pcie3, pcie3_x8 or nvlink)");
  return LinkSpec::nvlink();
}

double transfer_seconds(const LinkSpec& link, double bytes) {
  CUMF_EXPECTS(link.bw > 0, "link bandwidth must be positive");
  CUMF_EXPECTS(bytes >= 0, "cannot transfer negative bytes");
  return link.latency_s + bytes / link.bw;
}

double allgather_seconds(const LinkSpec& link, int gpus,
                         double bytes_per_gpu) {
  CUMF_EXPECTS(gpus >= 1, "need at least one GPU");
  if (gpus == 1) {
    return 0.0;
  }
  // Ring: g−1 rounds; in each round every device forwards one partition.
  return (gpus - 1) * transfer_seconds(link, bytes_per_gpu);
}

double allgather_seconds_ragged(const LinkSpec& link,
                                std::span<const double> bytes_per_device) {
  if (bytes_per_device.size() <= 1) {
    return 0.0;
  }
  double max_bytes = 0.0;
  for (const double b : bytes_per_device) {
    CUMF_EXPECTS(b >= 0, "cannot transfer negative bytes");
    max_bytes = std::max(max_bytes, b);
  }
  // Every ring step runs all partitions concurrently, one per link; the
  // step completes when the largest partition lands.
  const auto steps = static_cast<double>(bytes_per_device.size() - 1);
  return steps * transfer_seconds(link, max_bytes);
}

double pipelined_stream_seconds(std::span<const double> transfer_s,
                                std::span<const double> compute_s) {
  CUMF_EXPECTS(transfer_s.size() == compute_s.size(),
               "pipelined stream needs one transfer per compute");
  if (transfer_s.empty()) {
    return 0.0;
  }
  for (std::size_t i = 0; i < transfer_s.size(); ++i) {
    CUMF_EXPECTS(transfer_s[i] >= 0 && compute_s[i] >= 0,
                 "stage times must be non-negative");
  }
  // Double buffering: tile i+1 transfers while tile i computes, so each
  // inner step costs whichever of the pair is slower. Only the first
  // transfer and the last compute are fully exposed.
  double wall = transfer_s.front();
  for (std::size_t i = 0; i + 1 < transfer_s.size(); ++i) {
    wall += std::max(compute_s[i], transfer_s[i + 1]);
  }
  return wall + compute_s.back();
}

}  // namespace cumf::gpusim
