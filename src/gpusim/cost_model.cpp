#include "gpusim/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf::gpusim {

KernelTime kernel_time(const DeviceSpec& dev, const KernelProfile& profile) {
  CUMF_EXPECTS(dev.peak_flops > 0 && dev.dram_bw > 0, "invalid device");
  KernelTime t;

  const double eff = profile.compute_efficiency > 0
                         ? profile.compute_efficiency
                         : dev.compute_efficiency;
  t.t_compute = profile.flops / (dev.peak_flops * eff);
  const double bw_eff =
      profile.dram_efficiency > 0 ? profile.dram_efficiency : 1.0;
  t.t_dram = (profile.dram_read_bytes + profile.dram_write_bytes) /
             (dev.dram_bw * bw_eff);
  t.t_l2 = dev.l2_bw > 0 ? profile.l2_read_bytes / dev.l2_bw : 0.0;

  // Latency bound: total stall time divided by the memory-level parallelism
  // available to hide it — resident warps × outstanding loads per warp,
  // across all SMs (the trace accounts one SM; apply_trace scales totals).
  if (profile.stall_latency_s > 0) {
    const int warps = std::max(1, profile.warps_per_sm);
    const int outstanding = profile.outstanding_per_warp > 0
                                ? profile.outstanding_per_warp
                                : dev.outstanding_loads_per_warp;
    const double mlp = static_cast<double>(warps) * outstanding *
                       std::max(1.0, profile.lines_per_instruction) *
                       static_cast<double>(dev.sm_count);
    t.t_latency = profile.stall_latency_s / mlp;
  }

  t.seconds = t.t_compute;
  t.bound_by = "compute";
  if (t.t_dram > t.seconds) {
    t.seconds = t.t_dram;
    t.bound_by = "dram";
  }
  if (t.t_l2 > t.seconds) {
    t.seconds = t.t_l2;
    t.bound_by = "l2";
  }
  if (t.t_latency > t.seconds) {
    t.seconds = t.t_latency;
    t.bound_by = "latency";
  }
  return t;
}

double memcpy_bandwidth(const DeviceSpec& dev) {
  return dev.dram_bw * dev.memcpy_efficiency;
}

void apply_trace(const DeviceSpec& dev, const TraceStats& stats,
                 double total_rows, KernelProfile& profile) {
  CUMF_EXPECTS(stats.rows_simulated > 0, "trace must cover at least one row");
  // The trace covered rows_simulated rows on ONE SM; the full kernel
  // processes total_rows rows over all SMs. Totals scale linearly in rows.
  const double scale =
      total_rows / static_cast<double>(stats.rows_simulated);

  profile.dram_read_bytes +=
      scale * stats.dram_bytes(dev.cache_line_bytes);
  // L2→SM transfers happen at 32-byte sector granularity for scattered
  // requests, not whole cache lines; DRAM→L2 fills stay line-granular.
  constexpr double kSectorBytes = 32.0;
  profile.l2_read_bytes +=
      scale * static_cast<double>(stats.l2_hits + stats.dram_accesses) *
      kSectorBytes;

  const double stall =
      static_cast<double>(stats.inst_worst_dram) * dev.dram_latency_s +
      static_cast<double>(stats.inst_worst_l2) * dev.l2_latency_s +
      static_cast<double>(stats.inst_worst_l1) * dev.l1_latency_s;
  profile.stall_latency_s += scale * stall;
  if (stats.warp_instructions > 0) {
    profile.lines_per_instruction =
        static_cast<double>(stats.line_accesses) /
        static_cast<double>(stats.warp_instructions);
  }
}

double host_sgd_epoch_seconds(const HostSpec& host, double nnz, int f) {
  CUMF_EXPECTS(host.cores_per_machine > 0, "host needs cores");
  const double flops = nnz * (10.0 * f);
  // ~8·f bytes per sample: two factor rows are read and written but the
  // cache-blocked CPU implementations (LIBMF) keep roughly half the traffic
  // in the last-level cache.
  const double bytes = nnz * (8.0 * f);
  const double total_flops_rate = host.machines * host.cores_per_machine *
                                  host.flops_per_core *
                                  host.parallel_efficiency;
  const double total_bw = host.machines * host.mem_bw_per_machine;
  return std::max(flops / total_flops_rate, bytes / total_bw);
}

double host_network_epoch_seconds(const HostSpec& host, double columns,
                                  int f) {
  if (host.machines <= 1 || host.network_bw <= 0) {
    return 0.0;
  }
  // NOMAD-style column-token circulation: each column's f-vector visits
  // every machine once per epoch; all machines send concurrently, and
  // tokens are batched into messages of ~1000 columns.
  const double msg_bytes = columns * host.machines * (f * 4.0);
  return msg_bytes / (host.machines * host.network_bw) +
         host.network_latency_s * columns / 1000.0;
}

double host_als_epoch_seconds(const HostSpec& host, double nnz, double m,
                              double n, int f) {
  const double ff = static_cast<double>(f);
  const double flops = nnz * ff * ff * 2.0 + (m + n) * ff * ff * ff / 3.0;
  const double total_flops_rate = host.machines * host.cores_per_machine *
                                  host.flops_per_core *
                                  host.parallel_efficiency;
  return flops / total_flops_rate;
}

}  // namespace cumf::gpusim
