// Kernel timing model: roofline with a latency-bound correction.
//
// A kernel's simulated time is the maximum of four bottlenecks:
//   compute   — FLOPs / (peak × efficiency)
//   DRAM      — bytes moved to/from device memory / bandwidth
//   L2        — bytes served by L2 / L2 bandwidth
//   latency   — total warp stall time / available memory-level parallelism
// The last term is what distinguishes the paper's low-occupancy regime
// (Observation 2): with few resident warps, loads cannot be overlapped and
// the kernel is latency-bound even though DRAM bandwidth is idle.
#pragma once

#include <string>

#include "gpusim/device.hpp"
#include "gpusim/trace.hpp"

namespace cumf::gpusim {

struct KernelProfile {
  std::string name;
  double flops = 0;              ///< total floating-point operations
  double dram_read_bytes = 0;    ///< bytes actually fetched from DRAM
  double dram_write_bytes = 0;   ///< bytes written back to DRAM
  double l2_read_bytes = 0;      ///< bytes served by the L2 (incl. DRAM fills)
  /// Sum over warp memory instructions of the stall latency of their worst
  /// line (from a cache trace or an analytic estimate).
  double stall_latency_s = 0;
  int warps_per_sm = 0;          ///< occupancy of this kernel
  /// 0 means "use the device default" compute efficiency.
  double compute_efficiency = 0;
  /// Fraction of peak DRAM bandwidth this access pattern can sustain
  /// (streaming ≈ 0.85, scattered ≈ 0.5, memcpy reference ≈ 0.75).
  double dram_efficiency = 0.85;
  /// Memory instructions one warp keeps in flight. Independent streaming
  /// loads reach the device limit; a dependent load→shared-store→syncthreads
  /// staging loop (get_hermitian's load phase) sustains ~1. 0 = device
  /// default.
  int outstanding_per_warp = 0;
  /// Distinct cache lines touched per warp instruction: a fully coalesced
  /// access keeps 1 line in flight, the paper's non-coalesced scheme up to
  /// 32. Memory-level parallelism scales with lines, not instructions —
  /// this is the physical mechanism behind Solution 2.
  double lines_per_instruction = 1.0;
};

struct KernelTime {
  double seconds = 0;
  double t_compute = 0;
  double t_dram = 0;
  double t_l2 = 0;
  double t_latency = 0;
  const char* bound_by = "";
};

KernelTime kernel_time(const DeviceSpec& dev, const KernelProfile& profile);

/// Achieved device-to-device memcpy bandwidth (the Fig. 7b reference line):
/// bytes are both read and written, so the transfer rate seen by the SMs is
/// the full read+write traffic over the elapsed time.
double memcpy_bandwidth(const DeviceSpec& dev);

/// Converts a load-phase cache trace into {dram bytes, l2 bytes, stall
/// seconds} for a KernelProfile, scaling from `stats.rows_simulated`
/// simulated rows on one SM to `total_rows` rows on the whole device.
void apply_trace(const DeviceSpec& dev, const TraceStats& stats,
                 double total_rows, KernelProfile& profile);

// --- CPU / cluster models for the Fig. 6 comparison lines ---

/// One SGD epoch (all Nz samples once) on the host described by `host`.
/// flops_per_nz / bytes_per_nz describe the update kernel (≈10·f FLOPs and
/// ≈16·f bytes for a plain SGD step at latent dimension f).
double host_sgd_epoch_seconds(const HostSpec& host, double nnz, int f);

/// Per-epoch network time of a NOMAD-style multi-machine SGD: each of the
/// `columns` item-feature vectors circulates through every machine once per
/// epoch. Returns 0 for single-machine hosts. Overlappable with compute:
/// callers take max(compute, network).
double host_network_epoch_seconds(const HostSpec& host, double columns,
                                  int f);

/// One ALS epoch on the host (for CPU-ALS reference points): dominated by
/// Nz·f² hermitian FLOPs plus (m+n)·f³ solver FLOPs.
double host_als_epoch_seconds(const HostSpec& host, double nnz, double m,
                              double n, int f);

}  // namespace cumf::gpusim
