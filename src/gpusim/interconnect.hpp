// GPU-to-GPU interconnect model (PCIe 3.0 and NVLink).
//
// The multi-GPU runs of Fig. 6/8 (Hugewiki on four GPUs) require each device
// to see the full updated factor matrix after every half-epoch; the paper
// notes NVLink's 40 GB/s per link × 4 links as the enabler. This module
// models the all-gather of factor partitions across devices.
#pragma once

#include <span>
#include <string>

namespace cumf::gpusim {

struct LinkSpec {
  std::string name;
  double bw = 0.0;         ///< bytes/s per direction per device
  double latency_s = 0.0;  ///< per-transfer setup latency

  /// PCIe 3.0 x16: ~12 GB/s effective.
  static LinkSpec pcie3();
  /// PCIe 3.0 x8 (~6 GB/s): a x16 root port split across two cards.
  static LinkSpec pcie3_x8();
  /// NVLink (paper §I): 40 GB/s per link, 4 links per GPU.
  static LinkSpec nvlink();
};

/// CLI-facing lookup: "pcie3" → pcie3(), "nvlink" → nvlink(). Throws
/// CheckError on any other name (`cumf_train --link` forwards here).
LinkSpec link_by_name(const std::string& name);

/// Time to move `bytes` point-to-point over one link.
double transfer_seconds(const LinkSpec& link, double bytes);

/// Ring all-gather among `gpus` devices where each holds `bytes_per_gpu`:
/// (g−1) steps, each moving bytes_per_gpu per device concurrently.
double allgather_seconds(const LinkSpec& link, int gpus,
                         double bytes_per_gpu);

/// Ring all-gather with ragged partitions (nnz-balanced shards rarely hold
/// equal row counts). In every one of the (g−1) steps each device forwards
/// a different partition concurrently, so the step is paced by the largest
/// partition in flight: (g−1) · transfer(max bytes). One entry per device;
/// an empty or single-entry span costs nothing.
double allgather_seconds_ragged(const LinkSpec& link,
                                std::span<const double> bytes_per_device);

/// Wall time of a double-buffered transfer/compute pipeline over a tile
/// stream: while tile i computes, tile i+1 transfers. The schedule is
///   wall = t₀ + Σ_{i<T-1} max(c_i, t_{i+1}) + c_{T-1},
/// i.e. only the first transfer and whatever each later transfer fails to
/// hide under the preceding compute are exposed. Both spans must have equal
/// length (one entry per tile, in stream order); the serial ablation is
/// simply Σ (t_i + c_i). This is the bound the out-of-core ALS engine and
/// the multi-GPU comm overlap both charge against.
double pipelined_stream_seconds(std::span<const double> transfer_s,
                                std::span<const double> compute_s);

}  // namespace cumf::gpusim
