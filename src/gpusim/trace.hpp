// Address-trace generation for the get_hermitian load phase.
//
// Reproduces the experiment behind Fig. 3/4: the same set of feature columns
// θ_v is staged from global to shared memory under (a) the conventional
// coalesced scheme — all threads cooperate on one column before moving to the
// next — and (b) the paper's non-coalesced scheme — each thread walks its own
// column so one warp instruction touches up to 32 distinct cache lines.
// The traces of all thread-blocks resident on one SM are interleaved
// round-robin (emulating the SM warp scheduler) and run through the simulated
// L1→L2 hierarchy; the hit profile feeds the timing model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"

namespace cumf::gpusim {

struct TraceConfig {
  int f = 100;                ///< latent dimension (floats per column)
  int bin = 32;               ///< columns staged per batch (paper's BIN)
  int threads_per_block = 64;
  bool coalesced = false;     ///< scheme (a) if true, scheme (b) if false
  bool l1_enabled = true;     ///< false models the -dlcm=cg / noL1 build
  std::uint64_t theta_base = 0x10000000;  ///< base address of Θᵀ
};

struct TraceStats {
  std::uint64_t warp_instructions = 0;
  std::uint64_t line_accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t dram_accesses = 0;
  /// Instructions whose slowest line was served by each level: the warp
  /// stalls for its worst line, so latency modelling uses these.
  std::uint64_t inst_worst_l1 = 0;
  std::uint64_t inst_worst_l2 = 0;
  std::uint64_t inst_worst_dram = 0;
  /// Number of simulated rows (one per resident block iteration).
  std::uint64_t rows_simulated = 0;

  double dram_bytes(int line_bytes) const noexcept {
    return static_cast<double>(dram_accesses) * line_bytes;
  }
  double l2_bytes(int line_bytes) const noexcept {
    return static_cast<double>(l2_hits + dram_accesses) * line_bytes;
  }
  /// Fraction of line accesses served by L1 (0 when nothing was traced).
  double l1_hit_rate() const noexcept {
    return line_accesses == 0
               ? 0.0
               : static_cast<double>(l1_hits) / static_cast<double>(line_accesses);
  }
  /// Fraction of L1 misses served by L2.
  double l2_hit_rate() const noexcept {
    const std::uint64_t misses = l2_hits + dram_accesses;
    return misses == 0 ? 0.0
                       : static_cast<double>(l2_hits) /
                             static_cast<double>(misses);
  }
};

/// One warp-wide memory instruction: the distinct cache-line addresses it
/// touches (1 for a fully coalesced access, up to warp_size otherwise).
/// These records are the raw material of both the cache simulation below
/// and the analysis layer's coalescing lint (analysis/coalesce.hpp).
struct WarpInstruction {
  std::vector<std::uint64_t> lines;
};

/// Builds the load-phase instruction stream of one thread-block staging the
/// feature columns `cols` under `config`'s scheme.
std::vector<WarpInstruction> hermitian_load_trace(
    const DeviceSpec& dev, const TraceConfig& config,
    std::span<const index_t> cols);

/// Simulates the load phase on one SM. `rows_per_block[b]` is the sequence
/// of column indices (the non-zero columns of the rating row) that resident
/// block `b` must stage; the number of resident blocks is
/// `rows_per_block.size()` — pass the occupancy result for the real kernel.
TraceStats simulate_hermitian_load(
    const DeviceSpec& dev, const TraceConfig& config,
    std::span<const std::vector<index_t>> rows_per_block);

}  // namespace cumf::gpusim
