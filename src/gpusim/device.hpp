// Architectural description of the simulated GPUs (and CPU hosts).
//
// We have no physical GPU, so the paper's three test devices (Table III) are
// modelled by their published architectural parameters. Everything the cost
// model needs — SM count, register file, shared memory, cache sizes, peak
// FLOPS, DRAM bandwidth/latency — comes from this struct; kernels execute
// functionally on the host while the model charges simulated device time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cumf::gpusim {

struct DeviceSpec {
  std::string name;

  // Compute resources.
  int sm_count = 0;
  int regs_per_sm = 65536;        ///< 32-bit registers per SM
  int smem_per_sm_bytes = 0;      ///< shared memory per SM
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int warp_size = 32;
  /// Max memory requests a warp can keep in flight (MSHR-style limit).
  int outstanding_loads_per_warp = 6;

  // Memory hierarchy.
  int l1_bytes = 0;         ///< per-SM L1 data cache
  std::int64_t l2_bytes = 0;  ///< device-wide L2
  int cache_line_bytes = 128;
  double dram_latency_s = 0.0;   ///< full DRAM round-trip latency
  double l2_latency_s = 0.0;     ///< latency when served by L2
  double l1_latency_s = 0.0;     ///< latency when served by L1

  // Throughput.
  double peak_flops = 0.0;        ///< FP32 peak (FMA counted as 2 FLOP)
  /// FP16 Tensor-Core peak (0 on pre-Volta parts). The paper's §VII future
  /// work — exploiting Tensor Cores for the FP16 hermitian — is modelled
  /// through this field on the Volta preset.
  double tensor_flops = 0.0;
  double dram_bw = 0.0;           ///< bytes/s
  double l2_bw = 0.0;             ///< bytes/s device-wide
  /// Fraction of peak DRAM bandwidth achieved by plain device-to-device
  /// memcpy; the reference line in Fig. 7b.
  double memcpy_efficiency = 0.75;
  /// Fraction of peak FLOPS a well-tuned dense kernel sustains (issue
  /// overheads, bank conflicts, tail effects).
  double compute_efficiency = 0.72;

  /// Paper Table III presets.
  static DeviceSpec kepler_k40();
  static DeviceSpec maxwell_titan_x();
  static DeviceSpec pascal_p100();
  /// Volta V100 — the paper's §VII "new Nvidia Tensor Cores" target,
  /// released after the paper; used by the future-work benches.
  static DeviceSpec volta_v100();
};

/// Preset lookup by CLI short name ("k40", "titanx", "p100", "v100");
/// throws CheckError naming the valid spellings on anything else.
DeviceSpec device_by_name(std::string_view name);

/// CPU host / cluster description for the LIBMF and NOMAD comparison lines
/// (Fig. 6, Table IV). Like the GPUs, CPU baselines run functionally and are
/// charged modelled time.
struct HostSpec {
  std::string name;
  int machines = 1;
  int cores_per_machine = 0;
  double flops_per_core = 0.0;      ///< sustained FP32 per core
  double mem_bw_per_machine = 0.0;  ///< bytes/s
  /// Parallel efficiency of the SGD implementation at this scale (locking,
  /// NUMA, load imbalance). LIBMF stops scaling past a few dozen cores
  /// (paper §VI-A), which this factor captures.
  double parallel_efficiency = 0.6;
  /// Inter-machine network bandwidth (bytes/s) and per-message latency,
  /// used only when machines > 1 (NOMAD).
  double network_bw = 0.0;
  double network_latency_s = 0.0;

  /// 40-core single machine used for LIBMF in the paper.
  static HostSpec libmf_40core();
  /// 32-machine HPC cluster used for NOMAD (64 machines for Hugewiki).
  static HostSpec nomad_cluster(int machines);
};

}  // namespace cumf::gpusim
