// Simulated-time ledger.
//
// Every kernel launch in the functional execution charges its modelled
// device time here, keyed by kernel name. Benchmarks read per-kernel
// breakdowns (e.g. Fig. 4's load/compute/write split, Fig. 5's solver vs
// get_hermitian split) and totals (the x-axis of the Fig. 6/8 convergence
// plots).
#pragma once

#include <map>
#include <string>

namespace cumf::gpusim {

class SimClock {
 public:
  /// Adds `seconds` of simulated time to the bucket named `kernel`.
  void charge(const std::string& kernel, double seconds);

  /// Total simulated seconds across all kernels.
  double total() const noexcept { return total_; }

  /// Simulated seconds charged to one kernel (0 if never charged).
  double of(const std::string& kernel) const;

  const std::map<std::string, double>& breakdown() const noexcept {
    return buckets_;
  }

  void reset();

 private:
  std::map<std::string, double> buckets_;
  double total_ = 0.0;
};

}  // namespace cumf::gpusim
