#include "gpusim/trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf::gpusim {

namespace {

/// Collects the distinct lines covering byte range [begin, end).
void add_range_lines(std::uint64_t begin, std::uint64_t end, int line_bytes,
                     std::vector<std::uint64_t>& out) {
  const auto lb = static_cast<std::uint64_t>(line_bytes);
  for (std::uint64_t line = begin / lb; line <= (end - 1) / lb; ++line) {
    out.push_back(line * lb);
  }
}

}  // namespace

std::vector<WarpInstruction> hermitian_load_trace(
    const DeviceSpec& dev, const TraceConfig& config,
    std::span<const index_t> cols) {
  CUMF_EXPECTS(config.f > 0 && config.bin > 0, "f and BIN must be positive");
  CUMF_EXPECTS(config.threads_per_block % dev.warp_size == 0,
               "block must be whole warps");
  std::vector<WarpInstruction> stream;
  const auto f = static_cast<std::uint64_t>(config.f);
  const auto col_bytes = f * sizeof(real_t);
  const int warp = dev.warp_size;
  const int warps_per_block = config.threads_per_block / warp;

  const auto col_base = [&](index_t v) {
    return config.theta_base + static_cast<std::uint64_t>(v) * col_bytes;
  };

  for (std::size_t batch = 0; batch < cols.size();
       batch += static_cast<std::size_t>(config.bin)) {
    const std::size_t batch_end =
        std::min(cols.size(), batch + static_cast<std::size_t>(config.bin));
    const auto batch_cols = cols.subspan(batch, batch_end - batch);

    if (config.coalesced) {
      // Scheme (a): all threads cooperate on one column before the next.
      // Each warp instruction covers warp_size consecutive floats.
      for (const index_t v : batch_cols) {
        const std::uint64_t base = col_base(v);
        for (std::uint64_t off = 0; off < col_bytes;
             off += static_cast<std::uint64_t>(warp) * sizeof(real_t)) {
          const std::uint64_t end =
              std::min(col_bytes,
                       off + static_cast<std::uint64_t>(warp) * sizeof(real_t));
          WarpInstruction inst;
          add_range_lines(base + off, base + end, dev.cache_line_bytes,
                          inst.lines);
          std::sort(inst.lines.begin(), inst.lines.end());
          inst.lines.erase(std::unique(inst.lines.begin(), inst.lines.end()),
                           inst.lines.end());
          stream.push_back(std::move(inst));
        }
      }
    } else {
      // Scheme (b): each thread owns one column (threads beyond the batch
      // width share columns by splitting the element range). One instruction
      // per element step touches up to warp_size distinct lines.
      const int active_threads = config.threads_per_block;
      const int segments =
          std::max(1, active_threads / static_cast<int>(batch_cols.size()));
      const auto seg_len =
          (f + static_cast<std::uint64_t>(segments) - 1) /
          static_cast<std::uint64_t>(segments);

      // Element step e: thread t reads element (t / bin) * seg_len + e of
      // column batch_cols[t % bin].
      for (std::uint64_t e = 0; e < seg_len; ++e) {
        for (int w = 0; w < warps_per_block; ++w) {
          WarpInstruction inst;
          for (int lane = 0; lane < warp; ++lane) {
            const int t = w * warp + lane;
            const auto ci = static_cast<std::size_t>(t) % batch_cols.size();
            const auto seg = static_cast<std::uint64_t>(t) /
                             batch_cols.size() % segments;
            const std::uint64_t elem = seg * seg_len + e;
            if (elem >= f) {
              continue;  // tail of the last segment
            }
            const std::uint64_t addr =
                col_base(batch_cols[ci]) + elem * sizeof(real_t);
            inst.lines.push_back(addr / static_cast<std::uint64_t>(
                                           dev.cache_line_bytes) *
                                 static_cast<std::uint64_t>(
                                     dev.cache_line_bytes));
          }
          if (inst.lines.empty()) {
            continue;
          }
          std::sort(inst.lines.begin(), inst.lines.end());
          inst.lines.erase(std::unique(inst.lines.begin(), inst.lines.end()),
                           inst.lines.end());
          stream.push_back(std::move(inst));
        }
      }
    }
  }
  return stream;
}

TraceStats simulate_hermitian_load(
    const DeviceSpec& dev, const TraceConfig& config,
    std::span<const std::vector<index_t>> rows_per_block) {
  CUMF_EXPECTS(!rows_per_block.empty(), "need at least one resident block");
  CUMF_EXPECTS(config.f > 0 && config.bin > 0, "f and BIN must be positive");
  CUMF_EXPECTS(config.threads_per_block % dev.warp_size == 0,
               "block must be whole warps");

  // Build each resident block's instruction stream.
  std::vector<std::vector<WarpInstruction>> streams;
  streams.reserve(rows_per_block.size());
  for (const auto& cols : rows_per_block) {
    streams.push_back(hermitian_load_trace(dev, config, cols));
  }

  // L2 is shared device-wide; give this SM its proportional share so that a
  // single-SM simulation sees realistic L2 contention.
  // GPU L1s are highly associative (sectored, near-fully-associative per
  // set); 8 ways avoids artificial conflict misses the hardware doesn't see.
  CacheConfig l1{config.l1_enabled ? dev.l1_bytes : dev.cache_line_bytes * 8,
                 dev.cache_line_bytes, 8};
  CacheConfig l2{std::max<std::int64_t>(dev.l2_bytes / dev.sm_count,
                                        dev.cache_line_bytes * 64),
                 dev.cache_line_bytes, 16};
  CacheHierarchy hierarchy(l1, l2, config.l1_enabled);

  TraceStats stats;
  stats.rows_simulated = rows_per_block.size();

  // Round-robin interleave across resident blocks (SM warp scheduler).
  std::vector<std::size_t> cursor(streams.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t b = 0; b < streams.size(); ++b) {
      if (cursor[b] >= streams[b].size()) {
        continue;
      }
      const WarpInstruction& inst = streams[b][cursor[b]++];
      progressed = true;
      ++stats.warp_instructions;
      MemLevel worst = MemLevel::L1;
      for (const std::uint64_t line : inst.lines) {
        const MemLevel level = hierarchy.access(line);
        ++stats.line_accesses;
        switch (level) {
          case MemLevel::L1:
            ++stats.l1_hits;
            break;
          case MemLevel::L2:
            ++stats.l2_hits;
            if (worst == MemLevel::L1) {
              worst = MemLevel::L2;
            }
            break;
          case MemLevel::Dram:
            ++stats.dram_accesses;
            worst = MemLevel::Dram;
            break;
        }
      }
      switch (worst) {
        case MemLevel::L1:
          ++stats.inst_worst_l1;
          break;
        case MemLevel::L2:
          ++stats.inst_worst_l2;
          break;
        case MemLevel::Dram:
          ++stats.inst_worst_dram;
          break;
      }
    }
  }
  return stats;
}

}  // namespace cumf::gpusim
