#include "gpusim/device.hpp"

#include "common/check.hpp"

namespace cumf::gpusim {

DeviceSpec device_by_name(std::string_view name) {
  if (name == "k40") {
    return DeviceSpec::kepler_k40();
  }
  if (name == "titanx") {
    return DeviceSpec::maxwell_titan_x();
  }
  if (name == "p100") {
    return DeviceSpec::pascal_p100();
  }
  if (name == "v100") {
    return DeviceSpec::volta_v100();
  }
  throw CheckError("unknown device '" + std::string(name) +
                   "' (expected k40, titanx, p100 or v100)");
}

// Numbers are the published architectural parameters for each device;
// where the paper states a figure (Table III: peak FLOPS, memory bandwidth)
// we use the paper's figure.

DeviceSpec DeviceSpec::kepler_k40() {
  DeviceSpec d;
  d.name = "Kepler K40";
  d.sm_count = 15;
  d.regs_per_sm = 65536;
  d.smem_per_sm_bytes = 48 * 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 16;
  d.l1_bytes = 16 * 1024;     // default split: 16 KB L1 / 48 KB smem
  d.l2_bytes = 1536 * 1024;
  d.dram_latency_s = 900e-9;   // effective round-trip under load (queueing)
  d.l2_latency_s = 220e-9;
  d.l1_latency_s = 38e-9;
  d.peak_flops = 4.0e12;      // Table III: 4 TFLOPS
  d.dram_bw = 288.0e9;        // Table III: 288 GB/s
  d.l2_bw = 3.0 * d.dram_bw;
  d.compute_efficiency = 0.55;  // Kepler: fewer regs/core, dual-issue quirks
  return d;
}

DeviceSpec DeviceSpec::maxwell_titan_x() {
  DeviceSpec d;
  d.name = "Maxwell Titan X";
  d.sm_count = 24;
  d.regs_per_sm = 65536;
  d.smem_per_sm_bytes = 96 * 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.l1_bytes = 48 * 1024;     // §III: Maxwell L1 of 48 KB
  d.l2_bytes = 3 * 1024 * 1024;  // §III: 3 MB shared by 24 SMs
  d.dram_latency_s = 700e-9;   // effective round-trip under load (queueing)
  d.l2_latency_s = 180e-9;
  d.l1_latency_s = 30e-9;
  d.peak_flops = 7.0e12;      // Table III: 7 TFLOPS
  d.dram_bw = 340.0e9;        // Table III: 340 GB/s
  d.l2_bw = 3.0 * d.dram_bw;
  d.compute_efficiency = 0.68;
  return d;
}

DeviceSpec DeviceSpec::pascal_p100() {
  DeviceSpec d;
  d.name = "Pascal P100";
  d.sm_count = 56;
  d.regs_per_sm = 65536;
  d.smem_per_sm_bytes = 64 * 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.l1_bytes = 24 * 1024;
  d.l2_bytes = 4 * 1024 * 1024;
  d.dram_latency_s = 550e-9;   // effective round-trip under load (queueing)
  d.l2_latency_s = 160e-9;
  d.l1_latency_s = 28e-9;
  d.peak_flops = 11.0e12;     // Table III: 11 TFLOPS (actually 10.6, paper rounds)
  d.dram_bw = 740.0e9;        // Table III: 740 GB/s HBM2
  d.l2_bw = 3.0 * d.dram_bw;
  d.compute_efficiency = 0.74;  // more regs/core, HBM: highest efficiency
  return d;
}

DeviceSpec DeviceSpec::volta_v100() {
  DeviceSpec d;
  d.name = "Volta V100";
  d.sm_count = 80;
  d.regs_per_sm = 65536;
  d.smem_per_sm_bytes = 96 * 1024;   // configurable slice of the 128 KB pool
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.l1_bytes = 32 * 1024;            // remainder of the unified 128 KB pool
  d.l2_bytes = 6 * 1024 * 1024;
  d.dram_latency_s = 500e-9;   // effective round-trip under load (queueing)
  d.l2_latency_s = 150e-9;
  d.l1_latency_s = 26e-9;
  d.peak_flops = 15.0e12;            // FP32
  d.tensor_flops = 112.0e12;         // FP16 Tensor Cores
  d.dram_bw = 900.0e9;               // HBM2
  d.l2_bw = 3.0 * d.dram_bw;
  d.compute_efficiency = 0.75;
  return d;
}

HostSpec HostSpec::libmf_40core() {
  HostSpec h;
  h.name = "LIBMF 40-thread CPU";
  h.machines = 1;
  h.cores_per_machine = 40;
  h.flops_per_core = 12.0e9;        // ~3 GHz × 4-wide FMA sustained on SGD
  h.mem_bw_per_machine = 68.0e9;    // two-socket Xeon, ~68 GB/s sustained
  h.parallel_efficiency = 0.45;     // locking on the shared block scheduler
  return h;
}

HostSpec HostSpec::nomad_cluster(int machines) {
  HostSpec h;
  h.name = "NOMAD " + std::to_string(machines) + "-machine cluster";
  h.machines = machines;
  h.cores_per_machine = 16;
  h.flops_per_core = 12.0e9;
  h.mem_bw_per_machine = 60.0e9;
  // Distributed SGD scales poorly: in the paper NOMAD on 32 machines (512
  // cores) beats 40-core LIBMF by only ~2.4x on Netflix. The aggregate
  // efficiency factor reflects token queueing + stragglers + network stalls.
  h.parallel_efficiency = 0.04;
  h.network_bw = 1.25e9;            // 10 GbE per machine
  h.network_latency_s = 30e-6;
  return h;
}

}  // namespace cumf::gpusim
