// Spark-MLlib-style pipeline (paper §VII's MLlib integration): the
// familiar builder API — setRank / setRegParam / setMaxIter — backed by the
// cuMF engines, from file loading through evaluation to batch
// recommendation.
//
// Usage: mllib_pipeline [ratings.txt]   (triplet format; synthetic if absent)
#include <cstdio>

#include "common/rng.hpp"
#include "data/loaders.hpp"
#include "data/presets.hpp"
#include "metrics/rmse.hpp"
#include "mllib/als.hpp"
#include "sparse/split.hpp"

int main(int argc, char** argv) {
  using namespace cumf;

  RatingsCoo ratings = [&] {
    if (argc > 1) {
      std::printf("loading %s (triplet format)\n", argv[1]);
      return load_ratings_file(argv[1], LoaderOptions{});
    }
    std::printf("no input file — generating a Netflix-shaped dataset\n");
    return generate(DatasetPreset::netflix().resized(0.25)).ratings;
  }();

  Rng rng(5);
  const auto split = split_holdout(ratings, 0.1, rng);

  // The Spark idiom, almost verbatim:
  //   val als = new ALS().setRank(32).setRegParam(0.05).setMaxIter(8)
  //   val model = als.fit(training)
  const auto model = mllib::Als()
                         .set_rank(32)
                         .set_reg_param(0.05)
                         .set_max_iter(8)
                         .set_num_blocks(4)
                         .set_solver(SolverKind::CgFp16, 6)
                         .set_seed(42)
                         .fit(split.train);

  std::printf("fit done: rank=%d, test RMSE %.4f\n", model.rank(),
              rmse(split.test, model.user_factors(), model.item_factors()));

  // transform(): score the held-out pairs.
  const auto predictions = model.transform(split.test);
  std::printf("transform(): %zu predictions, first few:", predictions.size());
  for (std::size_t i = 0; i < 4 && i < predictions.size(); ++i) {
    std::printf(" %.2f", predictions[i]);
  }
  std::printf("\n");

  // recommendForAllUsers(3): batch top-k for the whole user base.
  const auto recs = model.recommend_for_all_users(3);
  std::printf("recommendForAllUsers(3): %zu users; user 0 gets:", recs.size());
  for (const auto& item : recs[0]) {
    std::printf(" item %u (%.2f)", item.item, item.score);
  }
  std::printf("\n");
  return 0;
}
