// Device explorer: use the gpusim substrate directly to answer "how would
// my kernel configuration behave on each GPU generation?" — occupancy,
// phase-by-phase times and the compute/memory/latency bottleneck, for any
// (f, tile, BIN, solver) combination.
//
// Usage: device_explorer [f] [tile] [bin]     (defaults: 100 10 32)
#include <cstdio>
#include <cstdlib>

#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "data/presets.hpp"
#include "gpusim/occupancy.hpp"

int main(int argc, char** argv) {
  using namespace cumf;

  AlsKernelConfig config;
  config.f = argc > 1 ? std::atoi(argv[1]) : 100;
  config.tile = argc > 2 ? std::atoi(argv[2])
                         : pick_tile(static_cast<std::size_t>(config.f), 10);
  config.bin = argc > 3 ? std::atoi(argv[3]) : 32;
  config.solver = SolverKind::CgFp16;

  const auto preset = DatasetPreset::netflix();
  const UpdateShape shape{static_cast<double>(preset.full_m),
                          static_cast<double>(preset.full_n),
                          static_cast<double>(preset.full_nnz)};

  std::printf("kernel config: f=%d tile=%d BIN=%d solver=%s "
              "(Netflix-scale update-X)\n\n",
              config.f, config.tile, config.bin, to_string(config.solver));

  for (const auto& dev : {gpusim::DeviceSpec::kepler_k40(),
                          gpusim::DeviceSpec::maxwell_titan_x(),
                          gpusim::DeviceSpec::pascal_p100()}) {
    const auto occ = hermitian_occupancy(dev, config);
    const auto times = update_phase_times(dev, shape, config);
    std::printf("=== %s ===\n", dev.name.c_str());
    std::printf("  occupancy: %d blocks/SM (%d warps, %.0f%% of max), "
                "limited by %s\n",
                occ.blocks_per_sm, occ.warps_per_sm, occ.fraction * 100.0,
                gpusim::to_string(occ.limited_by));
    std::printf("  regs/thread=%d threads/block=%d smem/block=%d B\n",
                gpusim::hermitian_regs_per_thread(config.f, config.tile),
                gpusim::hermitian_threads_per_block(config.f, config.tile),
                config.bin * config.f * 4);
    const auto phase = [](const char* name, const gpusim::KernelTime& t) {
      std::printf("  %-10s %8.4f s  (bound by %s)\n", name, t.seconds,
                  t.bound_by);
    };
    phase("load", times.load);
    phase("compute", times.compute);
    phase("write", times.write);
    phase("solve", times.solve);
    std::printf("  update-X total: %.4f s\n\n", times.total_seconds());
  }
  return 0;
}
