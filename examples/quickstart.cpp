// Quickstart: factorize a rating matrix with cuMF-ALS in ~40 lines.
//
//   1. generate (or load) a sparse rating matrix,
//   2. hold out a test set,
//   3. train AlsEngine with the paper's approximate CG solver,
//   4. watch the test RMSE converge and make a prediction.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "core/als.hpp"
#include "data/generator.hpp"
#include "metrics/rmse.hpp"
#include "sparse/split.hpp"

int main() {
  using namespace cumf;

  // 1. A synthetic 2000-user × 300-item rating matrix with planted
  //    structure (swap in read_ratings_file(...) for your own data).
  SyntheticConfig config;
  config.m = 2000;
  config.n = 300;
  config.nnz = 60'000;
  config.mean = 3.6;
  config.seed = 42;
  const SyntheticDataset data = generate_synthetic(config);

  // 2. Random 10% holdout.
  Rng rng(1);
  const TrainTestSplit split = split_holdout(data.ratings, 0.1, rng);

  // 3. cuMF-ALS: latent dimension 32, weighted-λ regularization, and the
  //    paper's approximate solver — conjugate gradient truncated at fs=6
  //    with the Hermitian matrices stored in FP16.
  AlsOptions options;
  options.f = 32;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp16;
  options.solver.cg_fs = 6;
  AlsEngine als(split.train, options);

  std::printf("epoch  train-RMSE  test-RMSE\n");
  for (int epoch = 1; epoch <= 8; ++epoch) {
    als.run_epoch();
    std::printf("%5d  %10.4f  %9.4f\n", epoch,
                rmse(split.train, als.user_factors(), als.item_factors()),
                rmse(split.test, als.user_factors(), als.item_factors()));
  }

  // 4. Predict: how would user 7 rate item 12?
  std::printf("\npredicted rating r(7, 12) = %.2f\n",
              predict(als.user_factors(), als.item_factors(), 7, 12));
  std::printf("noise floor of this dataset: %.4f\n",
              data.noise_floor_rmse);
  return 0;
}
