// Online recommendation service (paper §VII future work): ALS for the
// initial batch training, SGD for incremental updates as new ratings
// stream in, with periodic re-batching once the stream has grown the data
// enough — plus model persistence between "service restarts".
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "core/hybrid.hpp"
#include "data/generator.hpp"
#include "data/model_io.hpp"
#include "metrics/rmse.hpp"
#include "sparse/split.hpp"

int main() {
  using namespace cumf;

  // Yesterday's ratings: the batch.
  SyntheticConfig config;
  config.m = 1200;
  config.n = 200;
  config.nnz = 36'000;
  config.seed = 2026;
  const auto data = generate_synthetic(config);
  Rng rng(4);
  const auto split = split_holdout(data.ratings, 0.15, rng);

  HybridOptions options;
  options.als.f = 24;
  options.als.lambda = 0.05f;
  options.als.solver.kind = SolverKind::CgFp16;  // paper's fast solver
  options.batch_epochs = 8;
  options.rebatch_threshold = 0.10;
  HybridEngine service(split.train, options);
  std::printf("batch phase done: test RMSE %.4f\n",
              rmse(split.test, service.user_factors(),
                   service.item_factors()));

  // Today's traffic: the held-out ratings arrive one by one.
  int absorbed = 0;
  for (const Rating& e : split.test.entries()) {
    service.observe(e);
    ++absorbed;
    if (absorbed % 2000 == 0) {
      std::printf("  %5d ratings streamed, RMSE on stream %.4f, "
                  "rebatch recommended: %s\n",
                  absorbed,
                  rmse(split.test, service.user_factors(),
                       service.item_factors()),
                  service.rebatch_recommended() ? "yes" : "no");
    }
  }

  if (service.rebatch_recommended()) {
    std::printf("stream grew the data by >%.0f%% — running a re-batch\n",
                options.rebatch_threshold * 100);
    service.rebatch();
    std::printf("after re-batch: RMSE on stream %.4f (batch phases: %d)\n",
                rmse(split.test, service.user_factors(),
                     service.item_factors()),
                service.batch_phases_run());
  }

  // Persist the model for the next service start.
  const std::string path = "/tmp/cumf_online_model.txt";
  write_model_file(path,
                   FactorModel{service.user_factors(),
                               service.item_factors()});
  const auto restored = read_model_file(path);
  std::printf("model saved and restored: %zux%zu user factors, %zux%zu item "
              "factors\n",
              restored.x.rows(), restored.x.cols(), restored.theta.rows(),
              restored.theta.cols());
  return 0;
}
