// Movie recommender: the Netflix-style workload from the paper's intro.
//
// Trains cuMF-ALS on a Netflix-shaped dataset (loaded from disk if a path
// is given, generated otherwise), then produces top-k recommendations for a
// user — scoring only movies the user has not rated — and shows how the
// solver choice changes nothing about the recommendations but a lot about
// the modelled GPU time.
//
// Usage: movie_recommender [ratings.txt]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "data/io.hpp"
#include "data/presets.hpp"
#include "gpusim/device.hpp"
#include "metrics/rmse.hpp"
#include "sparse/csr.hpp"
#include "sparse/split.hpp"

using namespace cumf;

namespace {

std::vector<std::pair<index_t, real_t>> top_k_unseen(
    const AlsEngine& als, const CsrMatrix& seen, index_t user,
    std::size_t k) {
  const auto rated = seen.row_cols(user);
  std::vector<std::pair<index_t, real_t>> scored;
  for (index_t v = 0; v < seen.cols(); ++v) {
    if (std::binary_search(rated.begin(), rated.end(), v)) {
      continue;  // already rated
    }
    scored.emplace_back(
        v, predict(als.user_factors(), als.item_factors(), user, v));
  }
  const std::size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(keep),
                    scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  scored.resize(keep);
  return scored;
}

}  // namespace

int main(int argc, char** argv) {
  RatingsCoo ratings = [&] {
    if (argc > 1) {
      std::printf("loading ratings from %s\n", argv[1]);
      return read_ratings_file(argv[1]);
    }
    std::printf("no file given — generating a Netflix-shaped dataset\n");
    return generate(DatasetPreset::netflix().resized(0.3)).ratings;
  }();

  Rng rng(7);
  const TrainTestSplit split = split_holdout(ratings, 0.1, rng);
  const auto seen = CsrMatrix::from_coo(split.train);

  AlsOptions options;
  options.f = 32;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  AlsEngine als(split.train, options);
  for (int epoch = 0; epoch < 8; ++epoch) {
    als.run_epoch();
  }
  std::printf("trained 8 epochs: test RMSE %.4f\n",
              rmse(split.test, als.user_factors(), als.item_factors()));

  // Pick the most active user and recommend.
  index_t busiest = 0;
  for (index_t u = 1; u < seen.rows(); ++u) {
    if (seen.row_nnz(u) > seen.row_nnz(busiest)) {
      busiest = u;
    }
  }
  std::printf("\ntop-5 recommendations for user %u (%u ratings):\n", busiest,
              seen.row_nnz(busiest));
  for (const auto& [movie, score] : top_k_unseen(als, seen, busiest, 5)) {
    std::printf("  movie %5u   predicted rating %.2f\n", movie, score);
  }

  // What would this training cost on the paper's hardware?
  std::printf("\nmodelled epoch time at full Netflix scale (f=100):\n");
  for (const auto& dev : {gpusim::DeviceSpec::maxwell_titan_x(),
                          gpusim::DeviceSpec::pascal_p100()}) {
    const auto cfg = [&] {
      AlsKernelConfig c;
      c.f = 100;
      c.solver = SolverKind::CgFp16;
      return c;
    }();
    std::printf("  %-18s %.2f s/epoch\n", dev.name.c_str(),
                als_epoch_seconds(dev, 480189, 17770, 99e6, cfg));
  }
  return 0;
}
