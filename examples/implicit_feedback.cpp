// Implicit-feedback recommendation (paper §V-F): clicks/purchases instead of
// star ratings. Every unobserved (user, item) cell is a low-confidence zero,
// so the effective matrix is dense — the regime where ALS shines and SGD
// becomes uncompetitive.
//
// The example converts explicit ratings into implicit interactions, trains
// Hu-Koren-Volinsky ALS, and evaluates ranking quality with an AUC probe.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/implicit_als.hpp"
#include "data/generator.hpp"
#include "data/implicit.hpp"
#include "sparse/csr.hpp"

int main() {
  using namespace cumf;

  // Interactions: keep ratings ≥ 4 as "the user actually engaged".
  SyntheticConfig config;
  config.m = 1500;
  config.n = 400;
  config.nnz = 45'000;
  config.mean = 3.6;
  config.seed = 99;
  const auto explicit_data = generate_synthetic(config);
  const ImplicitDataset implicit =
      to_implicit(explicit_data.ratings, 4.0f, /*alpha=*/40.0);
  std::printf("kept %llu of %llu entries as implicit interactions\n",
              static_cast<unsigned long long>(implicit.interactions.nnz()),
              static_cast<unsigned long long>(explicit_data.ratings.nnz()));

  ImplicitAlsOptions options;
  options.f = 24;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp32;  // paper's approximate solver
  options.solver.cg_fs = 6;
  ImplicitAlsEngine engine(implicit, options);

  Rng rng(3);
  std::printf("epoch  AUC(observed beats random)\n");
  for (int epoch = 1; epoch <= 6; ++epoch) {
    engine.run_epoch();
    int wins = 0;
    int trials = 0;
    for (const Rating& e : implicit.interactions.entries()) {
      if (trials >= 3000) {
        break;
      }
      const auto random_item = static_cast<index_t>(
          rng.uniform_index(implicit.interactions.cols()));
      wins += engine.score(e.u, e.v) > engine.score(e.u, random_item);
      ++trials;
    }
    std::printf("%5d  %.3f\n", epoch,
                static_cast<double>(wins) / static_cast<double>(trials));
  }

  // Recommend the 5 strongest unseen items for user 0.
  const auto seen = CsrMatrix::from_coo(implicit.interactions);
  const auto rated = seen.row_cols(0);
  std::vector<std::pair<real_t, index_t>> scored;
  for (index_t v = 0; v < seen.cols(); ++v) {
    if (!std::binary_search(rated.begin(), rated.end(), v)) {
      scored.emplace_back(engine.score(0, v), v);
    }
  }
  std::sort(scored.rbegin(), scored.rend());
  std::printf("\ntop-5 items for user 0:\n");
  for (std::size_t i = 0; i < 5 && i < scored.size(); ++i) {
    std::printf("  item %4u   score %.3f\n", scored[i].second,
                scored[i].first);
  }
  return 0;
}
