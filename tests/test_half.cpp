// Tests for the software binary16 implementation. Precision claims of the
// paper's FP16 CG solver rest on these semantics, so the round-trip test is
// exhaustive over all 65536 bit patterns.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "half/half.hpp"

namespace cumf {
namespace {

TEST(Half, ExhaustiveRoundTripThroughFloat) {
  // Every finite or infinite half must survive half → float → half exactly;
  // NaNs must stay NaNs.
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const half h = half::from_bits(static_cast<std::uint16_t>(bits));
    const float widened = static_cast<float>(h);
    const half back(widened);
    if (h.is_nan()) {
      EXPECT_TRUE(back.is_nan()) << "bits=" << bits;
    } else {
      EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
    }
  }
}

TEST(Half, WideningMatchesReferenceOnKnownValues) {
  EXPECT_EQ(static_cast<float>(half(1.0f)), 1.0f);
  EXPECT_EQ(static_cast<float>(half(-2.0f)), -2.0f);
  EXPECT_EQ(static_cast<float>(half(0.5f)), 0.5f);
  EXPECT_EQ(static_cast<float>(half(65504.0f)), 65504.0f);  // max half
  EXPECT_EQ(static_cast<float>(half::denorm_min()), 0x1.0p-24f);
  EXPECT_EQ(static_cast<float>(half::min_normal()), 0x1.0p-14f);
  EXPECT_EQ(static_cast<float>(half::epsilon()), 0x1.0p-10f);
}

TEST(Half, RoundsToNearestEven) {
  // 1 + 2^-11 sits exactly between 1 and 1+2^-10: ties-to-even keeps 1.
  EXPECT_EQ(half(1.0f + 0x1.0p-11f).bits(), half(1.0f).bits());
  // 1 + 3·2^-11 is exactly between 1+2^-10 and 1+2^-9 → rounds to even
  // (1 + 2^-9 has an even mantissa pattern? verify against nearest).
  const float x = 1.0f + 3.0f * 0x1.0p-11f;
  const float lo = 1.0f + 0x1.0p-10f;
  const float hi = 1.0f + 0x1.0p-9f;
  const float rounded = static_cast<float>(half(x));
  EXPECT_TRUE(rounded == lo || rounded == hi);
  // Ties-to-even: mantissa of the result must be even.
  EXPECT_EQ(half(x).bits() & 1u, 0u);
  // Anything past the midpoint rounds up.
  EXPECT_EQ(static_cast<float>(half(1.0f + 0x1.8p-10f)),
            1.0f + 0x1.0p-9f);
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(half(65520.0f).is_inf());  // just past max+ulp/2
  EXPECT_TRUE(half(1e10f).is_inf());
  EXPECT_TRUE(half(-1e10f).is_inf());
  EXPECT_LT(static_cast<float>(half(-1e10f)), 0.0f);
  // 65504 + 15 rounds back down to max (below the ties boundary 65520).
  EXPECT_EQ(half(65519.0f).bits(), half::max().bits());
}

TEST(Half, UnderflowGoesToZeroPreservingSign) {
  const half pos(1e-10f);
  const half neg(-1e-10f);
  EXPECT_EQ(static_cast<float>(pos), 0.0f);
  EXPECT_EQ(static_cast<float>(neg), 0.0f);
  EXPECT_EQ(pos.bits(), 0x0000);
  EXPECT_EQ(neg.bits(), 0x8000);
}

TEST(Half, SubnormalsAreExact) {
  // 2^-24 · k for small k are exactly representable subnormals.
  for (int k = 1; k <= 16; ++k) {
    const float value = static_cast<float>(k) * 0x1.0p-24f;
    const half h(value);
    EXPECT_TRUE(h.is_subnormal());
    EXPECT_EQ(static_cast<float>(h), value) << "k=" << k;
  }
}

TEST(Half, NanPropagates) {
  const half nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_FALSE(nan == nan);
  EXPECT_TRUE(std::isnan(static_cast<float>(nan)));
  EXPECT_TRUE((nan + half(1.0f)).is_nan());
}

TEST(Half, InfinityArithmetic) {
  const half inf = half::infinity();
  EXPECT_TRUE(inf.is_inf());
  EXPECT_TRUE((inf + half(1.0f)).is_inf());
  EXPECT_TRUE((inf - inf).is_nan());
  EXPECT_TRUE(half(std::numeric_limits<float>::infinity()).is_inf());
}

TEST(Half, SignedZerosCompareEqual) {
  const half pz(0.0f);
  const half nz(-0.0f);
  EXPECT_NE(pz.bits(), nz.bits());
  EXPECT_TRUE(pz == nz);
}

TEST(Half, NegationFlipsSignBit) {
  const half h(3.5f);
  EXPECT_EQ(static_cast<float>(-h), -3.5f);
  EXPECT_TRUE((-half::quiet_nan()).is_nan());
}

TEST(Half, ArithmeticRoundsResultToHalf) {
  // 1 + 2^-11 in half arithmetic: the sum computed in float is not
  // representable, so it rounds back to 1.
  const half one(1.0f);
  const half tiny(0x1.0p-11f);
  EXPECT_EQ((one + tiny).bits(), one.bits());
  EXPECT_EQ(static_cast<float>(half(3.0f) * half(0.5f)), 1.5f);
  EXPECT_EQ(static_cast<float>(half(1.0f) / half(4.0f)), 0.25f);
}

TEST(Half, OrderingMatchesFloat) {
  EXPECT_TRUE(half(1.0f) < half(2.0f));
  EXPECT_TRUE(half(-2.0f) < half(-1.0f));
  EXPECT_FALSE(half(2.0f) < half(1.0f));
}

// Relative error of a half-rounded value must be within epsilon/2 for
// normal-range inputs (the storage-error bound the CG analysis relies on).
class HalfPrecisionSweep : public ::testing::TestWithParam<float> {};

TEST_P(HalfPrecisionSweep, RelativeErrorWithinHalfUlp) {
  const float x = GetParam();
  const float rounded = static_cast<float>(half(x));
  const float rel = std::abs(rounded - x) / std::abs(x);
  EXPECT_LE(rel, 0x1.0p-11f * 1.0001f) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    NormalRange, HalfPrecisionSweep,
    ::testing::Values(1.0f, 1.5f, 3.14159f, 123.456f, 0.001f, 0.3333f,
                      2047.3f, 60000.0f, 6.1e-5f, -7.77f, -0.124f,
                      -4096.5f));

}  // namespace
}  // namespace cumf
