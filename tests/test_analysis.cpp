// Tests for the cucheck dynamic-analysis layer: the seeded-bug fixture
// corpus must be caught with hazard reports naming the offending thread
// coordinates, the ported hermitian/CG kernels must run hazard-free (and
// still match the host implementations), and the coalescing lint must
// reproduce the Fig. 3/4 access-pattern story.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/coalesce.hpp"
#include "analysis/cucheck.hpp"
#include "analysis/fixtures.hpp"
#include "analysis/precheck.hpp"
#include "analysis/spans.hpp"
#include "common/rng.hpp"
#include "cusim/kernels.hpp"
#include "data/generator.hpp"
#include "gpusim/device.hpp"
#include "linalg/cg.hpp"
#include "sparse/csr.hpp"

namespace cumf::analysis {
namespace {

// ---------- fixture corpus: seeded bugs must be caught ----------

TEST(CucheckFixtures, SharedMemoryRaceIsDetected) {
  const CheckReport report = fixtures::run_shared_race();
  ASSERT_FALSE(report.clean());
  ASSERT_FALSE(report.hazards.empty());
  const Hazard& hazard = report.hazards.front();
  EXPECT_EQ(hazard.kind, HazardKind::WriteWrite);
  EXPECT_NE(hazard.message.find("write-write hazard"), std::string::npos);
  EXPECT_NE(hazard.message.find("'cell'"), std::string::npos);
  // Both conflicting thread coordinates are named.
  EXPECT_NE(hazard.message.find("thread (0,0,0)"), std::string::npos);
  EXPECT_NE(hazard.message.find("thread (1,0,0)"), std::string::npos);
  EXPECT_NE(hazard.message.find("block (0,0,0)"), std::string::npos);
}

TEST(CucheckFixtures, MissingBarrierIsDetectedAsReadWriteHazard) {
  const CheckReport report = fixtures::run_missing_barrier();
  ASSERT_FALSE(report.clean());
  bool saw_rw = false;
  for (const Hazard& hazard : report.hazards) {
    if (hazard.kind == HazardKind::ReadWrite) {
      saw_rw = true;
      EXPECT_NE(hazard.message.find("read-write hazard"), std::string::npos);
      EXPECT_NE(hazard.message.find("__syncthreads"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_rw);
}

TEST(CucheckFixtures, OobSharedWriteIsDetectedWithThreadCoordinates) {
  const CheckReport report = fixtures::run_oob_shared_write();
  ASSERT_FALSE(report.clean());
  const Hazard& hazard = report.hazards.front();
  EXPECT_EQ(hazard.kind, HazardKind::OutOfBounds);
  EXPECT_NE(hazard.message.find("out-of-bounds write"), std::string::npos);
  EXPECT_NE(hazard.message.find("shared buffer 'staged'"),
            std::string::npos);
  EXPECT_NE(hazard.message.find("index 4 (extent 4)"), std::string::npos);
  EXPECT_NE(hazard.message.find("thread (3,0,0)"), std::string::npos);
}

TEST(CucheckFixtures, OobGlobalReadIsDetectedWithThreadCoordinates) {
  const CheckReport report = fixtures::run_oob_global_read();
  ASSERT_FALSE(report.clean());
  const Hazard& hazard = report.hazards.front();
  EXPECT_EQ(hazard.kind, HazardKind::OutOfBounds);
  EXPECT_NE(hazard.message.find("out-of-bounds read"), std::string::npos);
  EXPECT_NE(hazard.message.find("global buffer 'theta'"),
            std::string::npos);
  EXPECT_NE(hazard.message.find("thread (2,0,0)"), std::string::npos);
}

TEST(CucheckFixtures, BarrierDivergenceIsReported) {
  const CheckReport report = fixtures::run_barrier_divergence();
  ASSERT_FALSE(report.clean());
  const Hazard& hazard = report.hazards.front();
  EXPECT_EQ(hazard.kind, HazardKind::BarrierDivergence);
  EXPECT_NE(hazard.message.find("still pending"), std::string::npos);
}

// ---------- racecheck must not cry wolf ----------

TEST(Cucheck, BarrierSeparatedProducerConsumerIsClean) {
  cusim::LaunchConfig config{cusim::Dim3{2}, cusim::Dim3{8},
                             sizeof(real_t)};
  std::vector<real_t> out(16, 0);
  const CheckReport report =
      launch_checked(config, [&](cusim::KernelCtx ctx) -> cusim::ThreadTask {
        auto cell = shared_span<real_t>(ctx, 0, 1, "cell");
        auto sink = global_span<real_t>(ctx, std::span<real_t>(out), "out");
        if (ctx.tid() == 0) {
          cell[0] = 42;
        }
        co_await ctx.sync();
        sink[ctx.blockIdx.x * 8 + ctx.tid()] = cell(0);
        co_return;
      });
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.stats.blocks, 2u);
  EXPECT_EQ(report.stats.barriers, 2u);
  EXPECT_GT(report.stats.shared_reads, 0u);
  for (const real_t v : out) {
    EXPECT_EQ(v, 42.0F);
  }
}

TEST(Cucheck, SameThreadReadModifyWriteIsClean) {
  cusim::LaunchConfig config{cusim::Dim3{1}, cusim::Dim3{4},
                             4 * sizeof(real_t)};
  const CheckReport report =
      launch_checked(config, [](cusim::KernelCtx ctx) -> cusim::ThreadTask {
        auto acc = shared_span<real_t>(ctx, 0, 4, "acc");
        for (int step = 0; step < 3; ++step) {
          acc[ctx.tid()] += 1.0F;  // owner discipline: no cross-thread touch
        }
        co_return;
      });
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(Cucheck, ReportSummaryMentionsCensusAndHazards) {
  const CheckReport clean_report = fixtures::run_shared_race();
  const std::string text = clean_report.summary();
  EXPECT_NE(text.find("hazard"), std::string::npos);
  EXPECT_NE(text.find("blocks"), std::string::npos);
  EXPECT_NE(text.find("shared"), std::string::npos);
}

// ---------- ported kernels: hazard-free and still correct ----------

TEST(CucheckKernels, CheckedHermitianIsHazardFree) {
  SyntheticConfig cfg;
  cfg.m = 30;
  cfg.n = 24;
  cfg.nnz = 400;
  cfg.seed = 11;
  const auto data = generate_synthetic(cfg);
  const auto csr = CsrMatrix::from_coo(data.ratings);
  const std::size_t f = 16;
  Matrix theta(csr.cols(), f);
  Rng rng(13);
  for (auto& v : theta.data()) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }

  Checker checker;
  const auto checked =
      cusim::hermitian_kernel_launch(csr, theta, 0.05F, 4, 8, &checker);
  const CheckReport report = checker.take_report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.stats.blocks, csr.rows());
  EXPECT_GT(report.stats.barriers, 0u);
  EXPECT_GT(report.stats.shared_writes, 0u);

  // The checked run must be bit-identical to the unchecked fast path.
  const auto unchecked =
      cusim::hermitian_kernel_launch(csr, theta, 0.05F, 4, 8);
  EXPECT_EQ(checked.a, unchecked.a);
  EXPECT_EQ(checked.b, unchecked.b);
}

TEST(CucheckKernels, CheckedCgIsHazardFreeAndMatchesUnchecked) {
  const std::size_t batch = 4;
  const std::size_t f = 12;
  Rng rng(17);
  std::vector<real_t> a(batch * f * f);
  std::vector<real_t> b(batch * f);
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<real_t> g(f * f);
    for (auto& v : g) {
      v = static_cast<real_t>(rng.normal(0.0, 1.0));
    }
    for (std::size_t r = 0; r < f; ++r) {
      for (std::size_t c = 0; c < f; ++c) {
        double acc = r == c ? 2.0 : 0.0;
        for (std::size_t k = 0; k < f; ++k) {
          acc += static_cast<double>(g[r * f + k]) *
                 static_cast<double>(g[c * f + k]);
        }
        a[i * f * f + r * f + c] = static_cast<real_t>(acc);
      }
    }
  }
  for (auto& v : b) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }

  std::vector<real_t> x_checked(batch * f, 0.0F);
  Checker checker;
  cusim::cg_kernel_launch(batch, f, a, b, x_checked, 6, 1e-4F, &checker);
  const CheckReport report = checker.take_report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.stats.shared_reads, 0u);
  EXPECT_GT(report.stats.global_reads, 0u);

  std::vector<real_t> x_plain(batch * f, 0.0F);
  cusim::cg_kernel_launch(batch, f, a, b, x_plain, 6, 1e-4F);
  EXPECT_EQ(x_checked, x_plain);
}

// ---------- coalescing lint ----------

TEST(CoalesceLint, FlagsInstructionsOverBudget) {
  std::vector<std::vector<gpusim::WarpInstruction>> blocks(1);
  blocks[0].push_back({{0, 128}});                       // 2 lines: fine
  blocks[0].push_back({{0, 128, 256, 384, 512, 640}});   // 6 lines: flagged
  const CoalesceReport report =
      lint_load_trace(blocks, CoalesceBudget{4, 16});
  EXPECT_EQ(report.instructions, 2u);
  EXPECT_EQ(report.flagged, 1u);
  EXPECT_EQ(report.worst_lines, 6);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].instruction, 1u);
  EXPECT_EQ(report.findings[0].lines_touched, 6);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.summary().find("exceed the budget"), std::string::npos);
}

TEST(CoalesceLint, CoalescedHermitianLoadIsClean) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  gpusim::TraceConfig config;
  config.f = 64;
  config.bin = 16;
  config.threads_per_block = 64;
  config.coalesced = true;
  std::vector<std::vector<index_t>> rows(2);
  for (index_t v = 0; v < 40; ++v) {
    rows[v % 2].push_back(v);
  }
  const CoalesceReport report =
      lint_hermitian_load(dev, config, rows, CoalesceBudget{4, 16});
  EXPECT_GT(report.instructions, 0u);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(CoalesceLint, NonCoalescedHermitianLoadExceedsTightBudget) {
  // The paper's scheme (b): each thread walks its own column, so one warp
  // instruction touches up to 32 distinct cache lines (Fig. 3).
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  gpusim::TraceConfig config;
  config.f = 100;
  config.bin = 32;
  config.threads_per_block = 64;
  config.coalesced = false;
  std::vector<std::vector<index_t>> rows(1);
  for (index_t v = 0; v < 64; ++v) {
    rows[0].push_back(v * 3);  // scattered columns
  }
  const CoalesceReport report =
      lint_hermitian_load(dev, config, rows, CoalesceBudget{4, 8});
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.worst_lines, 4);
  EXPECT_LE(report.findings.size(), 8u);  // capped
  EXPECT_GE(report.flagged, report.findings.size());
}

// ---------- precheck (the cumf_train --cucheck gate) ----------

TEST(Precheck, TrainingKernelsPassTheGate) {
  SyntheticConfig cfg;
  cfg.m = 50;
  cfg.n = 32;
  cfg.nnz = 700;
  cfg.seed = 23;
  const auto data = generate_synthetic(cfg);
  const auto csr = CsrMatrix::from_coo(data.ratings);
  const std::size_t f = 16;
  Matrix theta(csr.cols(), f);
  Rng rng(29);
  for (auto& v : theta.data()) {
    v = static_cast<real_t>(rng.normal(0.0, 0.1));
  }

  PrecheckConfig config;
  config.max_rows = 16;
  const PrecheckResult result = run_precheck(csr, theta, config);
  EXPECT_TRUE(result.clean()) << result.summary();
  EXPECT_TRUE(result.hermitian.clean());
  EXPECT_TRUE(result.cg.clean());
  EXPECT_GT(result.hermitian.stats.blocks, 0u);
  EXPECT_GT(result.cg.stats.blocks, 0u);
  EXPECT_GT(result.coalesce.instructions, 0u);
  EXPECT_NE(result.summary().find("cucheck precheck: PASS"),
            std::string::npos);
}

}  // namespace
}  // namespace cumf::analysis
