// Tests for the cuverify static-analysis layer: the registered (clean)
// kernel plans must prove out with zero error findings and zero kernel
// execution; every planted bug in the shared fixture corpus must be flagged
// statically; the static coalescing prediction must match the dynamic
// gpusim trace instruction-for-instruction; and the FP16 range analysis
// must predict the CG-FP16 solver's observed fallback behaviour on both an
// overflow-inducing and a safe dataset.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/cuverify/fp16range.hpp"
#include "analysis/cuverify/registry.hpp"
#include "analysis/cuverify/verify.hpp"
#include "analysis/fixtures.hpp"
#include "analysis/precheck.hpp"
#include "analysis/report.hpp"
#include "common/rng.hpp"
#include "core/als.hpp"
#include "cusim/cusim.hpp"
#include "cusim/kernels.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/trace.hpp"
#include "linalg/cg.hpp"
#include "sparse/csr.hpp"

namespace cumf::analysis::cuverify {
namespace {

/// Did the static report flag a hazard of the given dynamic kind?
bool statically_flagged(const VerifyReport& report, HazardKind kind) {
  switch (kind) {
    case HazardKind::WriteWrite:
    case HazardKind::ReadWrite:
      return std::any_of(report.races.hazards.begin(),
                         report.races.hazards.end(),
                         [&](const StaticHazard& h) { return h.kind == kind; });
    case HazardKind::OutOfBounds:
      return !report.bounds.violations.empty();
    case HazardKind::BarrierDivergence:
      return !report.barrier_hazards.empty();
    default:
      return false;
  }
}

RatingsCoo synthetic_coo(index_t rows, index_t cols, index_t nnz_per_row,
                         double rating_max, std::uint64_t seed) {
  RatingsCoo coo(rows, cols);
  Rng rng(seed);
  for (index_t u = 0; u < rows; ++u) {
    for (index_t k = 0; k < nnz_per_row; ++k) {
      const auto v = static_cast<index_t>(rng.uniform_index(cols));
      coo.add(u, v,
              static_cast<real_t>(rating_max * (0.5 + 0.5 * rng.uniform())));
    }
  }
  coo.sort_and_dedup();
  return coo;
}

// ---------- clean kernels: every registered launch proves out ----------

TEST(CuverifyRegistry, AllRegisteredLaunchesVerifyWithZeroErrors) {
  const std::uint64_t launches_before = cusim::launch_count();
  const auto launches = registered_launches();
  ASSERT_GE(launches.size(), 5U);  // 3 hermitian shapes + 2 CG shapes
  for (const auto& launch : launches) {
    const VerifyReport report = verify(launch.plan);
    EXPECT_TRUE(report.clean()) << launch.name << ":\n" << report.summary();
    EXPECT_TRUE(report.bounds.violations.empty()) << launch.name;
    EXPECT_TRUE(report.races.hazards.empty()) << launch.name;
    EXPECT_TRUE(report.barrier_hazards.empty()) << launch.name;
    EXPECT_TRUE(report.launchable) << launch.name;
    // The hermitian accumulate and the CG reduction ladders are designed
    // conflict-free; the static bank model must agree.
    EXPECT_EQ(report.banks.conflicted, 0U) << launch.name;
    EXPECT_EQ(exit_code(report.findings), 0) << launch.name;
  }
  // The entire audit is symbolic: no cusim kernel may have been launched.
  EXPECT_EQ(cusim::launch_count() - launches_before, 0U);
}

TEST(CuverifyRegistry, OccupancyMatchesGpusimModel) {
  // The f=100 paper shape: plan occupancy must equal the direct gpusim
  // computation from the same resources.
  const auto launches = registered_launches();
  const auto it = std::find_if(
      launches.begin(), launches.end(),
      [](const RegisteredLaunch& l) { return l.name.find("f=100") != std::string::npos; });
  ASSERT_NE(it, launches.end());
  const VerifyReport report = verify(it->plan);
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  // verify() feeds the occupancy model the thread count rounded up to a
  // whole number of warps (hardware schedules whole warps); do the same.
  const auto warp = static_cast<unsigned>(dev.warp_size);
  gpusim::KernelResources res;
  res.regs_per_thread = it->plan.regs_per_thread;
  res.threads_per_block =
      static_cast<int>((it->plan.threads() + warp - 1) / warp * warp);
  res.smem_per_block_bytes = static_cast<int>(it->plan.shared_bytes);
  const auto expected = gpusim::compute_occupancy(dev, res);
  EXPECT_EQ(report.occupancy.blocks_per_sm, expected.blocks_per_sm);
  EXPECT_EQ(report.occupancy.limited_by, expected.limited_by);
}

// ---------- fixture corpus: every planted bug flagged statically ----------

TEST(CuverifyFixtures, EveryPlantedBugIsFlaggedWithoutExecution) {
  const std::uint64_t launches_before = cusim::launch_count();
  for (const auto& fixture : fixtures::all_fixtures()) {
    const VerifyReport report = verify(fixture.plan());
    EXPECT_TRUE(statically_flagged(report, fixture.expected))
        << fixture.name << " expected " << to_string(fixture.expected)
        << " but the static report was:\n"
        << report.summary();
    EXPECT_FALSE(report.clean()) << fixture.name;
    EXPECT_EQ(exit_code(report.findings), 1) << fixture.name;
  }
  EXPECT_EQ(cusim::launch_count() - launches_before, 0U);
}

TEST(CuverifyFixtures, StaticWitnessesMatchDynamicVocabulary) {
  // The static messages must be directly comparable to the dynamic ones:
  // same hazard nouns, same thread/index coordinates.
  for (const auto& fixture : fixtures::all_fixtures()) {
    const VerifyReport report = verify(fixture.plan());
    const std::string name = fixture.name;
    const auto all_messages = [&report]() {
      std::string out;
      for (const auto& h : report.bounds.violations) out += h.message + "\n";
      for (const auto& h : report.races.hazards) out += h.message + "\n";
      for (const auto& h : report.barrier_hazards) out += h.message + "\n";
      return out;
    }();
    if (name == "shared_race") {
      EXPECT_NE(all_messages.find("write-write hazard"), std::string::npos);
      EXPECT_NE(all_messages.find("'cell'"), std::string::npos);
    } else if (name == "missing_barrier") {
      EXPECT_NE(all_messages.find("read-write hazard"), std::string::npos);
      EXPECT_NE(all_messages.find("__syncthreads"), std::string::npos);
    } else if (name == "oob_shared_write") {
      EXPECT_NE(all_messages.find("out-of-bounds write"), std::string::npos);
      EXPECT_NE(all_messages.find("'staged'"), std::string::npos);
      EXPECT_NE(all_messages.find("index 4 (extent 4)"), std::string::npos);
      EXPECT_NE(all_messages.find("thread (3,0,0)"), std::string::npos);
    } else if (name == "oob_global_read") {
      EXPECT_NE(all_messages.find("out-of-bounds read"), std::string::npos);
      EXPECT_NE(all_messages.find("'theta'"), std::string::npos);
      EXPECT_NE(all_messages.find("extent 6"), std::string::npos);
    } else if (name == "barrier_divergence") {
      EXPECT_NE(all_messages.find("still pending"), std::string::npos);
    }
  }
}

// ---------- differential: static hazards ⊇ dynamic hazards ----------

TEST(CuverifyDifferential, StaticRacecheckFlagsEveryDynamicHazard) {
  for (const auto& fixture : fixtures::all_fixtures()) {
    const CheckReport dynamic = fixture.run_dynamic();
    ASSERT_FALSE(dynamic.clean()) << fixture.name;
    const VerifyReport statics = verify(fixture.plan());
    std::set<HazardKind> dynamic_kinds;
    for (const auto& hazard : dynamic.hazards) {
      dynamic_kinds.insert(hazard.kind);
    }
    for (const HazardKind kind : dynamic_kinds) {
      EXPECT_TRUE(statically_flagged(statics, kind))
          << fixture.name << ": dynamic found " << to_string(kind)
          << " but the static report missed it:\n"
          << statics.summary();
    }
  }
}

// ---------- coalescing: static prediction == dynamic trace ----------

void expect_stream_equal(const std::vector<gpusim::WarpInstruction>& statics,
                         const std::vector<gpusim::WarpInstruction>& dynamic,
                         const char* scheme) {
  ASSERT_EQ(statics.size(), dynamic.size()) << scheme;
  for (std::size_t i = 0; i < statics.size(); ++i) {
    EXPECT_EQ(statics[i].lines, dynamic[i].lines)
        << scheme << " instruction " << i;
  }
}

TEST(CuverifyCoalesce, LoadPlanReproducesGpusimTraceInstructionForInstruction) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  std::vector<index_t> cols(70);
  Rng rng(31);
  for (auto& c : cols) {
    c = static_cast<index_t>(rng.uniform_index(512));
  }
  for (const bool coalesced : {true, false}) {
    gpusim::TraceConfig config;
    config.coalesced = coalesced;
    const auto dynamic = gpusim::hermitian_load_trace(dev, config, cols);
    const AccessPlan plan = hermitian_load_plan(dev, config, cols);
    const auto statics = plan_warp_instructions(plan, 0, dev);
    expect_stream_equal(statics, dynamic,
                        coalesced ? "scheme (a)" : "scheme (b)");

    // Totals must line up with the cache simulator's own accounting.
    std::vector<std::vector<index_t>> rows{{cols.begin(), cols.end()}};
    const auto stats = gpusim::simulate_hermitian_load(dev, config, rows);
    EXPECT_EQ(stats.warp_instructions, statics.size());
    std::uint64_t lines = 0;
    for (const auto& inst : statics) {
      lines += inst.lines.size();
    }
    EXPECT_EQ(stats.line_accesses, lines);

    // And the lint verdict (the dynamic coalescing oracle) must agree with
    // the prediction embedded in verify()'s coalesce pass.
    const auto report = verify(plan);
    std::vector<std::vector<gpusim::WarpInstruction>> blocks{dynamic};
    const CoalesceReport lint = lint_load_trace(blocks);
    EXPECT_EQ(report.coalesce.instructions, lint.instructions);
    EXPECT_EQ(report.coalesce.flagged, lint.flagged);
    EXPECT_EQ(report.coalesce.worst_lines, lint.worst_lines);
    // Scheme (a) is coalesced by construction; scheme (b) is the paper's
    // deliberately scattered layout and must be flagged by both.
    if (coalesced) {
      EXPECT_EQ(lint.flagged, 0U) << "scheme (a) must lint clean";
    } else {
      EXPECT_GT(lint.flagged, 0U) << "scheme (b) must be flagged";
    }
  }
}

// ---------- bank conflicts ----------

TEST(CuverifyBank, StrideOfBankCountIsFlaggedAndUnitStrideIsClean) {
  AccessPlan plan;
  plan.kernel = "bank_probe";
  plan.grid = cusim::Dim3{1};
  plan.block = cusim::Dim3{32};
  plan.shared_bytes = 32 * 32 * sizeof(real_t);
  plan.buffers = {
      {"tilebuf", cusim::MemSpace::Shared, 32 * 32, sizeof(real_t), 0}};
  PlanAccess column;  // lane t reads word 32·t: all lanes on bank 0
  column.buffer = 0;
  column.kind = cusim::AccessKind::Read;
  column.index.thread_coeff = 32;
  column.label = "column";
  plan.segments.push_back({{column}, 0, 0});
  const VerifyReport conflicted = verify(plan);
  EXPECT_EQ(conflicted.banks.worst_way, 32U);
  EXPECT_GT(conflicted.banks.conflicted, 0U);
  EXPECT_TRUE(conflicted.clean()) << "bank conflicts are warnings";
  EXPECT_EQ(count(conflicted.findings, Severity::Warning), 1U);

  plan.segments[0].accesses[0].index.thread_coeff = 1;  // row-major: clean
  const VerifyReport clean = verify(plan);
  EXPECT_EQ(clean.banks.conflicted, 0U);
  EXPECT_LE(clean.banks.worst_way, 1U);
}

// ---------- occupancy / launchability ----------

TEST(CuverifyOccupancy, ImpossibleSharedRequestIsAnError) {
  AccessPlan plan;
  plan.kernel = "smem_hog";
  plan.grid = cusim::Dim3{1};
  plan.block = cusim::Dim3{64};
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  plan.shared_bytes = dev.smem_per_sm_bytes + 4096;
  plan.buffers = {{"hog", cusim::MemSpace::Shared,
                   (dev.smem_per_sm_bytes + 4096) / sizeof(real_t),
                   sizeof(real_t), 0}};
  plan.segments.push_back({{}, 0, 0});
  const VerifyReport report = verify(plan);
  EXPECT_FALSE(report.launchable);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(exit_code(report.findings), 1);
}

// ---------- shared severity / exit-code convention ----------

TEST(CuverifyReport, SeverityScaleAndExitCodesAreShared) {
  EXPECT_STREQ(to_string(Severity::Error), "error");
  std::vector<Finding> findings;
  EXPECT_EQ(exit_code(findings), 0);
  findings.push_back({Severity::Warning, "coalesce", "k", "over budget"});
  EXPECT_EQ(exit_code(findings), 0) << "warnings do not gate";
  findings.push_back({Severity::Error, "racecheck", "k", "hazard"});
  EXPECT_EQ(exit_code(findings), 1);
  const std::string rendered = render(findings);
  EXPECT_NE(rendered.find("warning [coalesce]"), std::string::npos);
  EXPECT_NE(rendered.find("error [racecheck]"), std::string::npos);
}

TEST(CuverifyReport, PrecheckSharesTheFindingFormat) {
  // The dynamic gate's findings use the same records: a clean precheck run
  // has no error findings and exit code 0 under the shared convention.
  const auto coo = synthetic_coo(40, 24, 6, 5.0, 7);
  const auto csr = CsrMatrix::from_coo(coo);
  Matrix theta(csr.cols(), 8);
  Rng rng(2);
  for (auto& v : theta.data()) {
    v = static_cast<real_t>(rng.normal(0.0, 0.1));
  }
  const PrecheckResult result = run_precheck(csr, theta);
  ASSERT_TRUE(result.clean());
  EXPECT_EQ(count(result.findings(), Severity::Error), 0U);
  EXPECT_EQ(result.exit_code(), 0);
}

// ---------- FP16 range analysis vs observed fallbacks ----------

TEST(CuverifyFp16, OverflowDatasetIsPredictedUnsafeAndDoesFallBack) {
  // Ratings of ~3e4 with ~40-dense rows at f=8: the equilibrium diagonal
  // n·r/f + λ·n lands near 1.5e5, far past half::max() = 65504.
  const auto coo = synthetic_coo(48, 48, 40, 3.0e4, 21);
  const auto csr = CsrMatrix::from_coo(coo);
  Fp16RangeOptions options;
  options.f = 8;
  options.lambda = 0.05;
  const Fp16RangeResult prediction = analyze_fp16_range(csr, options);
  EXPECT_TRUE(prediction.overflow_risk);
  EXPECT_FALSE(prediction.predicted_fp16_safe);
  EXPECT_GT(prediction.a_eq_max, 65504.0);

  AlsOptions als;
  als.f = 8;
  als.lambda = 0.05F;
  als.solver.kind = SolverKind::CgFp16;
  AlsEngine engine(coo, als);
  for (int epoch = 0; epoch < 3; ++epoch) {
    engine.run_epoch();
  }
  EXPECT_GT(engine.solve_stats().fp16_fallbacks, 0U)
      << "the predicted overflow must materialize as FP32 fallbacks";

  // The finding is a Warning when the CG-FP16 solver is selected.
  const auto findings = fp16_findings(prediction, /*cg_fp16_selected=*/true,
                                      "overflow dataset");
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].severity, Severity::Warning);
  EXPECT_EQ(exit_code(findings), 0) << "advisory, never gates";
}

TEST(CuverifyFp16, RatingScaleDatasetIsPredictedSafeAndNeverFallsBack) {
  const auto coo = synthetic_coo(48, 48, 20, 5.0, 22);
  const auto csr = CsrMatrix::from_coo(coo);
  Fp16RangeOptions options;
  options.f = 8;
  options.lambda = 0.05;
  const Fp16RangeResult prediction = analyze_fp16_range(csr, options);
  EXPECT_TRUE(prediction.predicted_fp16_safe) << prediction.explanation;
  EXPECT_FALSE(prediction.flush_risk);

  AlsOptions als;
  als.f = 8;
  als.lambda = 0.05F;
  als.solver.kind = SolverKind::CgFp16;
  AlsEngine engine(coo, als);
  for (int epoch = 0; epoch < 3; ++epoch) {
    engine.run_epoch();
  }
  EXPECT_EQ(engine.solve_stats().fp16_fallbacks, 0U);

  const auto findings =
      fp16_findings(prediction, /*cg_fp16_selected=*/true, "safe dataset");
  ASSERT_EQ(findings.size(), 1U);
  EXPECT_EQ(findings[0].severity, Severity::Info);
}

TEST(CuverifyFp16, MatvecEnvelopeStaysInFp32Range) {
  // CG arithmetic is FP32: even the overflow dataset's intermediates are
  // tiny against float range — the A pack is the only half constraint.
  const auto coo = synthetic_coo(48, 48, 40, 3.0e4, 21);
  const auto prediction =
      analyze_fp16_range(CsrMatrix::from_coo(coo), {});
  EXPECT_GT(prediction.cg_intermediate_abs, 0.0);
  EXPECT_LT(prediction.cg_intermediate_abs, 3.0e38);
  EXPECT_DOUBLE_EQ(
      cg_matvec_abs_bound(100, 2.0, 3.0), 600.0);
}

}  // namespace
}  // namespace cumf::analysis::cuverify
