// Tests for the paper's core contribution: the tiled get_hermitian kernel,
// the pluggable solvers, the ALS engine, implicit ALS, multi-GPU ALS and the
// kernel cost-model bridge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "analysis/faultinject.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/hermitian.hpp"
#include "core/implicit_als.hpp"
#include "core/kernel_stats.hpp"
#include "core/multi_gpu.hpp"
#include "core/solver.hpp"
#include "data/generator.hpp"
#include "data/implicit.hpp"
#include "metrics/rmse.hpp"
#include "sparse/split.hpp"

namespace cumf {
namespace {

SyntheticDataset small_dataset(nnz_t nnz = 6000, std::uint64_t seed = 7) {
  SyntheticConfig cfg;
  cfg.m = 300;
  cfg.n = 80;
  cfg.nnz = nnz;
  cfg.true_rank = 4;
  cfg.mean = 3.5;
  cfg.signal_std = 0.7;
  cfg.noise_std = 0.25;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

// ---------- get_hermitian ----------

class HermitianTileSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HermitianTileSweep, TiledMatchesReference) {
  const auto [f, tile, bin] = GetParam();
  SyntheticConfig cfg;
  cfg.m = 50;
  cfg.n = 40;
  cfg.nnz = 800;
  cfg.seed = 11;
  const auto data = generate_synthetic(cfg);
  const auto csr = CsrMatrix::from_coo(data.ratings);

  Matrix theta(40, static_cast<std::size_t>(f));
  Rng rng(5);
  for (std::size_t v = 0; v < theta.rows(); ++v) {
    for (std::size_t k = 0; k < theta.cols(); ++k) {
      theta(v, k) = static_cast<real_t>(rng.normal(0.0, 1.0));
    }
  }

  const std::size_t ff = static_cast<std::size_t>(f);
  std::vector<real_t> a_tiled(ff * ff);
  std::vector<real_t> b_tiled(ff);
  std::vector<real_t> a_ref(ff * ff);
  std::vector<real_t> b_ref(ff);
  HermitianParams params{tile, bin};
  HermitianWorkspace ws;
  for (index_t u = 0; u < csr.rows(); ++u) {
    get_hermitian_row(csr, theta, u, 0.05f, params, ws, a_tiled, b_tiled);
    get_hermitian_row_reference(csr, theta, u, 0.05f, a_ref, b_ref);
    const double deg = csr.row_nnz(u);
    EXPECT_LT(max_abs_diff(a_tiled, a_ref), 1e-3 * (deg + 1.0)) << "u=" << u;
    EXPECT_LT(max_abs_diff(b_tiled, b_ref), 1e-3 * (deg + 1.0)) << "u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TileBinGrid, HermitianTileSweep,
    ::testing::Values(std::tuple{20, 10, 32}, std::tuple{20, 5, 32},
                      std::tuple{20, 4, 8}, std::tuple{16, 8, 4},
                      std::tuple{24, 6, 16}, std::tuple{20, 20, 32},
                      std::tuple{20, 2, 1}));

TEST(Hermitian, OutputIsSymmetricWithRidgeDiagonal) {
  const auto data = small_dataset(2000);
  const auto csr = CsrMatrix::from_coo(data.ratings);
  const std::size_t f = 20;
  Matrix theta(csr.cols(), f, 0.5f);
  std::vector<real_t> a(f * f);
  std::vector<real_t> b(f);
  HermitianWorkspace ws;
  get_hermitian_row(csr, theta, 0, 0.1f, HermitianParams{10, 32}, ws, a, b);
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j < f; ++j) {
      EXPECT_EQ(a[i * f + j], a[j * f + i]);
    }
  }
  // With constant θ = 0.5: off-diagonal = deg·0.25, diagonal adds λ·deg.
  const double deg = csr.row_nnz(0);
  EXPECT_NEAR(a[1], deg * 0.25, 1e-3);
  EXPECT_NEAR(a[0], deg * 0.25 + 0.1 * deg, 1e-3);
}

TEST(Hermitian, EmptyRowYieldsZeroSystem) {
  RatingsCoo coo(3, 2);
  coo.add(0, 0, 1.0f);
  const auto csr = CsrMatrix::from_coo(coo);
  Matrix theta(2, 4, 1.0f);
  std::vector<real_t> a(16, 99.0f);
  std::vector<real_t> b(4, 99.0f);
  HermitianWorkspace ws;
  get_hermitian_row(csr, theta, 2, 0.1f, HermitianParams{2, 4}, ws, a, b);
  for (const real_t v : a) {
    EXPECT_EQ(v, 0.0f);
  }
  for (const real_t v : b) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(Hermitian, RejectsBadTile) {
  const auto data = small_dataset(2000);
  const auto csr = CsrMatrix::from_coo(data.ratings);
  Matrix theta(csr.cols(), 20);
  std::vector<real_t> a(400);
  std::vector<real_t> b(20);
  HermitianWorkspace ws;
  EXPECT_THROW(get_hermitian_row(csr, theta, 0, 0.1f, HermitianParams{7, 32},
                                 ws, a, b),
               CheckError);
}

// ---------- SystemSolver ----------

class SolverKindSweep : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolverKindSweep, SolvesSpdSystem) {
  const std::size_t f = 16;
  Rng rng(3);
  std::vector<real_t> m(f * f);
  for (auto& v : m) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  std::vector<real_t> a(f * f, 0);
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j < f; ++j) {
      double acc = i == j ? 2.0 : 0.0;
      for (std::size_t k = 0; k < f; ++k) {
        acc += static_cast<double>(m[i * f + k]) *
               static_cast<double>(m[j * f + k]);
      }
      a[i * f + j] = static_cast<real_t>(acc);
    }
  }
  std::vector<real_t> b(f, 1.0f);
  std::vector<real_t> x(f, 0.0f);

  SolverOptions options;
  options.kind = GetParam();
  options.cg_fs = 64;  // enough for convergence in the exactness test
  options.cg_eps = 1e-5f;
  SystemSolver solver(f, options);
  ASSERT_TRUE(solver.solve(a, b, x));
  double worst = 0;
  for (std::size_t i = 0; i < f; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < f; ++j) {
      acc += static_cast<double>(a[i * f + j]) * static_cast<double>(x[j]);
    }
    worst = std::max(worst, std::abs(acc - 1.0));
  }
  // FP16 A storage perturbs the system itself: looser bound.
  EXPECT_LT(worst, GetParam() == SolverKind::CgFp16 ? 0.1 : 1e-2);
  EXPECT_EQ(solver.stats().systems, 1u);
  EXPECT_EQ(solver.stats().failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SolverKindSweep,
                         ::testing::Values(SolverKind::LuFp32,
                                           SolverKind::CholeskyFp32,
                                           SolverKind::CgFp32,
                                           SolverKind::CgFp16));

TEST(SystemSolver, ReportsFailureOnSingularSystem) {
  std::vector<real_t> a{1, 1, 1, 1};  // singular
  std::vector<real_t> b{1, 1};
  std::vector<real_t> x{0, 0};
  SolverOptions options;
  options.kind = SolverKind::LuFp32;
  SystemSolver solver(2, options);
  EXPECT_FALSE(solver.solve(a, b, x));
  EXPECT_EQ(solver.stats().failures, 1u);
}

TEST(SystemSolver, CgCountsIterations) {
  std::vector<real_t> a{4, 1, 1, 3};
  std::vector<real_t> b{1, 2};
  std::vector<real_t> x{0, 0};
  SolverOptions options;
  options.kind = SolverKind::CgFp32;
  options.cg_fs = 6;
  SystemSolver solver(2, options);
  ASSERT_TRUE(solver.solve(a, b, x));
  EXPECT_GE(solver.stats().cg_iterations, 1u);
  EXPECT_LE(solver.stats().cg_iterations, 6u);
}

TEST(SystemSolver, CgIterationHistogramTracksSolves) {
  std::vector<real_t> a{4, 1, 1, 3};
  std::vector<real_t> b{1, 2};
  std::vector<real_t> x{0, 0};
  SolverOptions options;
  options.kind = SolverKind::CgFp32;
  options.cg_fs = 6;
  SystemSolver solver(2, options);
  ASSERT_TRUE(solver.solve(a, b, x));
  x.assign({0, 0});
  ASSERT_TRUE(solver.solve(a, b, x));
  const SolveStats& stats = solver.stats();
  std::uint64_t histogram_total = 0;
  std::uint64_t weighted = 0;
  for (std::size_t i = 0; i < stats.cg_hist.size(); ++i) {
    histogram_total += stats.cg_hist[i];
    weighted += stats.cg_hist[i] * i;
  }
  EXPECT_EQ(histogram_total, 2u);  // one bucket entry per solve
  EXPECT_EQ(weighted, stats.cg_iterations);
}

TEST(SolveStats, DeltaOfCumulativeSnapshots) {
  SolveStats older;
  older.systems = 10;
  older.cg_iterations = 55;
  older.fp16_converted = 100;
  older.cg_hist[5] = 5;
  older.cg_hist[6] = 5;
  SolveStats newer = older;
  newer.systems += 4;
  newer.cg_iterations += 24;
  newer.fp16_converted += 40;
  newer.cg_hist[6] += 4;
  const SolveStats delta = newer - older;
  EXPECT_EQ(delta.systems, 4u);
  EXPECT_EQ(delta.cg_iterations, 24u);
  EXPECT_EQ(delta.fp16_converted, 40u);
  EXPECT_EQ(delta.cg_hist[5], 0u);
  EXPECT_EQ(delta.cg_hist[6], 4u);
}

// ---------- AlsEngine ----------

TEST(Als, RmseDecreasesAndReachesNoiseFloor) {
  const auto data = small_dataset(8000);
  Rng rng(17);
  const auto split = split_holdout(data.ratings, 0.1, rng);

  AlsOptions options;
  options.f = 16;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  AlsEngine als(split.train, options);

  double prev = 1e9;
  double best = 1e9;
  for (int epoch = 0; epoch < 12; ++epoch) {
    als.run_epoch();
    const double test =
        rmse(split.test, als.user_factors(), als.item_factors());
    best = std::min(best, test);
    if (epoch >= 2) {
      EXPECT_LT(test, prev * 1.10) << "diverging at epoch " << epoch;
    }
    prev = test;
  }
  // Must approach the irreducible noise (within 50%: small test set, wide
  // f relative to the row degree, regularization bias).
  EXPECT_LT(best, data.noise_floor_rmse * 1.5);
}

TEST(Als, CgMatchesLuFinalAccuracy) {
  // The paper's central accuracy claim: truncated CG (fs=6) converges to
  // the same RMSE as the exact LU solver.
  const auto data = small_dataset(8000, 23);
  Rng rng(19);
  const auto split = split_holdout(data.ratings, 0.1, rng);

  const auto run = [&](SolverKind kind) {
    AlsOptions options;
    options.f = 16;
    options.lambda = 0.05f;
    options.solver.kind = kind;
    options.solver.cg_fs = 6;
    AlsEngine als(split.train, options);
    for (int epoch = 0; epoch < 10; ++epoch) {
      als.run_epoch();
    }
    return rmse(split.test, als.user_factors(), als.item_factors());
  };

  const double lu = run(SolverKind::LuFp32);
  const double cg32 = run(SolverKind::CgFp32);
  const double cg16 = run(SolverKind::CgFp16);
  EXPECT_NEAR(cg32, lu, 0.02 * lu);
  EXPECT_NEAR(cg16, lu, 0.04 * lu);  // FP16: slightly looser, still converged
}

TEST(Als, TiledAndReferenceHermitianGiveSameTrajectory) {
  const auto data = small_dataset(5000, 29);
  AlsOptions tiled;
  tiled.f = 16;
  tiled.solver.kind = SolverKind::CholeskyFp32;
  auto plain = tiled;
  plain.tiled_hermitian = false;

  AlsEngine a(data.ratings, tiled);
  AlsEngine b(data.ratings, plain);
  for (int epoch = 0; epoch < 3; ++epoch) {
    a.run_epoch();
    b.run_epoch();
  }
  const double ra = rmse(data.ratings, a.user_factors(), a.item_factors());
  const double rb = rmse(data.ratings, b.user_factors(), b.item_factors());
  EXPECT_NEAR(ra, rb, 1e-3);
}

TEST(Als, HandlesRowsAndColsWithNoTrainingData) {
  RatingsCoo coo(5, 4);
  coo.add(0, 0, 4.0f);
  coo.add(1, 0, 3.0f);
  coo.add(0, 1, 5.0f);
  // rows 2-4 and cols 2-3 unobserved
  AlsOptions options;
  options.f = 4;
  AlsEngine als(coo, options);
  als.run_epoch();
  als.run_epoch();
  for (const real_t v : als.user_factors().data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  for (const real_t v : als.item_factors().data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Als, MeasuredOpsMatchAnalyticComplexity) {
  const auto data = small_dataset(6000, 31);
  AlsOptions options;
  options.f = 16;
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  AlsEngine als(data.ratings, options);
  als.run_epoch();
  const double f = 16;
  const double nnz = static_cast<double>(data.ratings.nnz());
  // Hermitian FLOPs = 2·Nz·(f² + 2f) (both half-sweeps).
  const double expected = 2.0 * nnz * (f * f + 2.0 * f);
  EXPECT_NEAR(als.hermitian_ops_per_epoch().flops, expected,
              0.01 * expected);
  EXPECT_GT(als.solve_ops_per_epoch().flops, 0.0);
}

TEST(Als, PickTileDividesF) {
  EXPECT_EQ(pick_tile(100, 10), 10);
  EXPECT_EQ(pick_tile(16, 10), 8);
  EXPECT_EQ(pick_tile(24, 10), 8);
  EXPECT_EQ(pick_tile(17, 10), 1);  // prime: degenerate tile
  EXPECT_EQ(pick_tile(40, 40), 40);
}

TEST(Als, RejectsBadOptions) {
  const auto data = small_dataset(2000, 37);
  AlsOptions options;
  options.lambda = 0.0f;
  EXPECT_THROW(AlsEngine(data.ratings, options), CheckError);
}

// ---------- implicit ALS ----------

TEST(ImplicitAls, DenseLossDecreasesMonotonically) {
  SyntheticConfig cfg;
  cfg.m = 60;
  cfg.n = 30;
  cfg.nnz = 600;
  cfg.seed = 41;
  const auto data = generate_synthetic(cfg);
  const auto implicit = to_implicit(data.ratings, 3.0f, 10.0);

  ImplicitAlsOptions options;
  options.f = 8;
  options.lambda = 0.1f;
  options.solver.kind = SolverKind::CholeskyFp32;
  ImplicitAlsEngine engine(implicit, options);

  double prev = engine.dense_loss();
  for (int epoch = 0; epoch < 5; ++epoch) {
    engine.run_epoch();
    const double loss = engine.dense_loss();
    EXPECT_LE(loss, prev * 1.0001) << "epoch " << epoch;
    prev = loss;
  }
}

TEST(ImplicitAls, RanksObservedAboveUnobserved) {
  SyntheticConfig cfg;
  cfg.m = 80;
  cfg.n = 40;
  cfg.nnz = 800;
  cfg.seed = 43;
  const auto data = generate_synthetic(cfg);
  const auto implicit = to_implicit(data.ratings, 3.5f, 40.0);

  ImplicitAlsOptions options;
  options.f = 8;
  options.lambda = 0.05f;
  ImplicitAlsEngine engine(implicit, options);
  for (int epoch = 0; epoch < 8; ++epoch) {
    engine.run_epoch();
  }

  // Mean score of observed pairs must exceed mean score of random pairs.
  const auto csr = CsrMatrix::from_coo(implicit.interactions);
  double observed = 0.0;
  nnz_t count = 0;
  for (const Rating& e : implicit.interactions.entries()) {
    observed += engine.score(e.u, e.v);
    ++count;
  }
  observed /= static_cast<double>(count);

  Rng rng(45);
  double background = 0.0;
  for (int i = 0; i < 2000; ++i) {
    background += engine.score(
        static_cast<index_t>(rng.uniform_index(cfg.m)),
        static_cast<index_t>(rng.uniform_index(cfg.n)));
  }
  background /= 2000.0;
  EXPECT_GT(observed, background + 0.2);
}

// ---------- multi-GPU ----------

TEST(MultiGpu, PartitionCoversAllRows) {
  const auto parts = partition_rows(103, 4);
  ASSERT_EQ(parts.size(), 4u);
  index_t total = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    total += parts[p].size();
    if (p > 0) {
      EXPECT_EQ(parts[p].begin, parts[p - 1].end);
    }
  }
  EXPECT_EQ(total, 103u);
  EXPECT_THROW(partition_rows(103, 0), CheckError);
}

TEST(MultiGpu, PartitionYieldsEmptyTailsWhenPartsExceedRows) {
  // A 4-GPU run on a 2-row dataset idles the surplus devices instead of
  // refusing to construct.
  const auto parts = partition_rows(2, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), 1u);
  EXPECT_EQ(parts[1].size(), 1u);
  EXPECT_EQ(parts[2].size(), 0u);
  EXPECT_EQ(parts[3].size(), 0u);
  EXPECT_EQ(parts[3].end, 2u);

  const auto empty = partition_rows(0, 3);
  ASSERT_EQ(empty.size(), 3u);
  for (const RowRange& r : empty) {
    EXPECT_EQ(r.size(), 0u);
  }
}

TEST(MultiGpu, NnzBalancedShardsCoverRowsAndBalanceWork) {
  SyntheticConfig cfg;
  cfg.m = 400;
  cfg.n = 60;
  cfg.nnz = 12000;
  cfg.row_zipf = 1.1;  // heavy skew: the case row-count splits lose on
  cfg.seed = 61;
  const auto data = generate_synthetic(cfg);
  const auto csr = CsrMatrix::from_coo(data.ratings);
  const auto& ptr = csr.row_ptr();

  const auto shards = nnz_balanced_shards(csr, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards.front().begin, 0u);
  EXPECT_EQ(shards.back().end, csr.rows());
  nnz_t heaviest_nnz = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (s > 0) {
      EXPECT_EQ(shards[s].begin, shards[s - 1].end);
    }
    heaviest_nnz = std::max(
        heaviest_nnz, ptr[shards[s].end] - ptr[shards[s].begin]);
  }
  // The heaviest shard cannot exceed the perfect quarter by more than the
  // heaviest single row (contiguous cuts cannot split a row).
  nnz_t max_row = 0;
  for (index_t u = 0; u < csr.rows(); ++u) {
    max_row = std::max(max_row, ptr[u + 1] - ptr[u]);
  }
  EXPECT_LE(heaviest_nnz, csr.nnz() / 4 + max_row);

  // More shards than rows: tails are empty, coverage still exact.
  SyntheticConfig tiny;
  tiny.m = 3;
  tiny.n = 5;
  tiny.nnz = 10;
  tiny.seed = 3;
  const auto small_csr =
      CsrMatrix::from_coo(generate_synthetic(tiny).ratings);
  const auto wide = nnz_balanced_shards(small_csr, 6);
  ASSERT_EQ(wide.size(), 6u);
  EXPECT_EQ(wide.front().begin, 0u);
  EXPECT_EQ(wide.back().end, small_csr.rows());
}

TEST(MultiGpu, FourGpusMatchSingleGpuExactly) {
  const auto data = small_dataset(4000, 47);
  AlsOptions options;
  options.f = 16;
  options.solver.kind = SolverKind::CholeskyFp32;

  MultiGpuAls single(data.ratings, options, 1);
  MultiGpuAls quad(data.ratings, options, 4);
  for (int epoch = 0; epoch < 2; ++epoch) {
    single.run_epoch();
    quad.run_epoch();
  }
  EXPECT_EQ(single.user_factors(), quad.user_factors());
  EXPECT_EQ(single.item_factors(), quad.item_factors());
  // Merged per-device SolveStats are integer sums, so they must match the
  // single-device totals exactly, not approximately.
  EXPECT_EQ(single.solve_stats(), quad.solve_stats());
}

TEST(MultiGpu, MatchesAlsEngineBitForBit) {
  // The concurrent sharded engine and the reference AlsEngine share the
  // als_update_rows hot loop; with identical seeds the factors and the
  // solver accounting must agree to the last bit, CG-FP16 quirks included.
  const auto data = small_dataset(5000, 59);
  AlsOptions options;
  options.f = 16;
  options.solver.kind = SolverKind::CgFp16;
  options.solver.cg_fs = 5;

  AlsEngine reference(data.ratings, options);
  MultiGpuAls quad(data.ratings, options, 4);
  for (int epoch = 0; epoch < 3; ++epoch) {
    reference.run_epoch();
    quad.run_epoch();
  }
  EXPECT_EQ(reference.user_factors(), quad.user_factors());
  EXPECT_EQ(reference.item_factors(), quad.item_factors());
  EXPECT_EQ(reference.solve_stats(), quad.solve_stats());
  EXPECT_GT(quad.solve_stats().systems, 0u);
}

TEST(MultiGpu, StaticRowScheduleIsAlsoBitIdentical) {
  // AlsSchedule::static_rows swaps the nnz-balanced device shards for the
  // row-count split (the ablation baseline); any disjoint partition must
  // produce the same factors.
  const auto data = small_dataset(4000, 67);
  AlsOptions options;
  options.f = 12;
  options.schedule = AlsSchedule::static_rows;

  MultiGpuAls single(data.ratings, options, 1);
  MultiGpuAls quad(data.ratings, options, 4);
  for (int epoch = 0; epoch < 2; ++epoch) {
    single.run_epoch();
    quad.run_epoch();
  }
  EXPECT_EQ(single.user_factors(), quad.user_factors());
  // The shards really are row-count cuts, not nnz cuts.
  const auto& shards = quad.user_shards();
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_LE(shards[0].size() - shards[3].size(), 1u);
}

TEST(MultiGpu, FaultInjectionCountsMatchDeviceCounts) {
  // Fault decisions are pure functions of (seed, site, row), so a plan
  // must corrupt exactly the same systems — and trigger exactly the same
  // degradations — on 1 device, on 4 devices, and in AlsEngine.
  const auto data = small_dataset(4000, 71);
  AlsOptions options;
  options.f = 16;
  options.solver.kind = SolverKind::CgFp16;

  analysis::FaultPlan plan;
  plan.seed = 5;
  plan.indefinite_a_prob = 0.05;
  plan.fp16_overflow_prob = 0.05;

  const auto run_counts = [&](auto& engine) {
    analysis::FaultInjector::instance().arm(plan);  // arm resets counts
    engine.run_epoch();
    engine.run_epoch();
    const auto& c = analysis::FaultInjector::instance().counts();
    return std::pair{c.indefinite_a.load(), c.fp16_overflow.load()};
  };

  AlsEngine reference(data.ratings, options);
  MultiGpuAls quad(data.ratings, options, 4);
  const auto ref_counts = run_counts(reference);
  const auto quad_counts = run_counts(quad);
  analysis::FaultInjector::instance().disarm();

  EXPECT_GT(ref_counts.first + ref_counts.second, 0u);
  EXPECT_EQ(ref_counts, quad_counts);
  EXPECT_EQ(reference.user_factors(), quad.user_factors());
  EXPECT_EQ(reference.item_factors(), quad.item_factors());
  // Degradation accounting (CG breakdowns -> LU fallbacks, FP16 overflow
  // -> FP32 retries) merges across devices without loss.
  EXPECT_EQ(reference.solve_stats(), quad.solve_stats());
  EXPECT_GT(quad.solve_stats().cg_fallbacks, 0u);
  EXPECT_GT(quad.solve_stats().fp16_fallbacks, 0u);
}

TEST(MultiGpu, EpochHookAndRestoreContinueBitIdentically) {
  const auto data = small_dataset(3000, 73);
  AlsOptions options;
  options.f = 12;

  std::vector<int> hooked;
  MultiGpuAls full(data.ratings, options, 4);
  full.set_epoch_hook([&](int epoch) { hooked.push_back(epoch); });
  full.run_epoch();
  full.run_epoch();
  const Matrix snap_x = full.user_factors();
  const Matrix snap_theta = full.item_factors();
  const SolveStats snap_stats = full.solve_stats();
  full.run_epoch();
  EXPECT_EQ(hooked, (std::vector<int>{1, 2, 3}));

  // A fresh engine restored from the epoch-2 snapshot (with a different
  // device count, like a post-crash resume on other hardware) must land on
  // the same epoch-3 state and carry the stats baseline forward.
  MultiGpuAls resumed(data.ratings, options, 2);
  resumed.restore(snap_x, snap_theta, 2, snap_stats);
  EXPECT_EQ(resumed.epochs_run(), 2);
  resumed.run_epoch();
  EXPECT_EQ(resumed.epochs_run(), 3);
  EXPECT_EQ(resumed.user_factors(), full.user_factors());
  EXPECT_EQ(resumed.item_factors(), full.item_factors());
  EXPECT_EQ(resumed.solve_stats(), full.solve_stats());
}

TEST(MultiGpu, EpochTimeImprovesWithMoreGpus) {
  const auto data = small_dataset(4000, 53);
  AlsOptions options;
  options.f = 20;
  MultiGpuAls one(data.ratings, options, 1);
  MultiGpuAls four(data.ratings, options, 4);
  const auto dev = gpusim::DeviceSpec::pascal_p100();
  const auto config = AlsKernelConfig{};
  const double t1 = one.epoch_seconds(dev, config, gpusim::LinkSpec::nvlink());
  const double t4 =
      four.epoch_seconds(dev, config, gpusim::LinkSpec::nvlink());
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 4.0);  // communication keeps it sublinear
}

TEST(MultiGpu, TimelineChargesInterconnectAndOverlap) {
  const auto data = small_dataset(6000, 79);
  AlsOptions options;
  options.f = 16;
  MultiGpuAls four(data.ratings, options, 4);
  const auto dev = gpusim::DeviceSpec::pascal_p100();
  const AlsKernelConfig config{};

  const auto nvlink = gpusim::LinkSpec::nvlink();
  const auto pcie = gpusim::LinkSpec::pcie3();
  const auto overlapped = four.epoch_timeline(dev, config, nvlink);
  const auto serial =
      four.epoch_timeline(dev, config, nvlink, /*overlap=*/false);
  // Same wire traffic either way; overlap only changes the exposed part.
  EXPECT_DOUBLE_EQ(overlapped.update_x.comm_total_s,
                   serial.update_x.comm_total_s);
  EXPECT_GT(overlapped.comm_s(), 0.0);
  EXPECT_LT(overlapped.comm_s(), serial.comm_s());
  EXPECT_LT(overlapped.total_s(), serial.total_s());

  // The slower link exposes more communication time.
  const auto on_pcie = four.epoch_timeline(dev, config, pcie);
  EXPECT_GT(on_pcie.comm_s(), overlapped.comm_s());

  // One device pays no interconnect at all.
  MultiGpuAls one(data.ratings, options, 1);
  const auto alone = one.epoch_timeline(dev, config, nvlink);
  EXPECT_EQ(alone.comm_s(), 0.0);

  // And the scaling report is internally consistent.
  const auto report = four.scaling_report(dev, config, nvlink);
  EXPECT_EQ(report.gpus, 4);
  EXPECT_NEAR(report.total_s, report.compute_s + report.comm_s, 1e-12);
  EXPECT_NEAR(report.efficiency, report.speedup / 4.0, 1e-12);
  EXPECT_GT(report.speedup, 1.0);
  EXPECT_LT(report.speedup, 4.0);
  EXPECT_GT(report.comm_fraction, 0.0);
  EXPECT_LT(report.comm_fraction, 1.0);
}

// ---------- kernel cost-model bridge ----------

TEST(KernelStats, PaperOccupancyThroughConfig) {
  AlsKernelConfig config;  // f=100, tile=10, bin=32
  const auto occ =
      hermitian_occupancy(gpusim::DeviceSpec::maxwell_titan_x(), config);
  EXPECT_EQ(occ.blocks_per_sm, 6);
}

TEST(KernelStats, Fig4LoadOrdering) {
  // nonCoal-L1 < nonCoal-noL1 < coal for the load phase (Netflix shape).
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  UpdateShape shape{480189, 17770, 99e6};
  AlsKernelConfig config;
  config.load_scheme = LoadScheme::NonCoalescedL1;
  const double t_l1 = update_phase_times(dev, shape, config).load.seconds;
  config.load_scheme = LoadScheme::NonCoalescedNoL1;
  const double t_nol1 = update_phase_times(dev, shape, config).load.seconds;
  config.load_scheme = LoadScheme::Coalesced;
  const double t_coal = update_phase_times(dev, shape, config).load.seconds;
  EXPECT_LT(t_l1, t_nol1);
  EXPECT_LT(t_nol1, t_coal);
}

TEST(KernelStats, Fig4ComputeInvariantAcrossSchemes) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  UpdateShape shape{480189, 17770, 99e6};
  AlsKernelConfig a;
  a.load_scheme = LoadScheme::Coalesced;
  AlsKernelConfig b;
  b.load_scheme = LoadScheme::NonCoalescedL1;
  EXPECT_DOUBLE_EQ(update_phase_times(dev, shape, a).compute.seconds,
                   update_phase_times(dev, shape, b).compute.seconds);
}

TEST(KernelStats, Fig5SolverOrdering) {
  // LU-FP32 ≫ CG-FP32 > CG-FP16 (paper: 4x and 2x).
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  UpdateShape shape{480189, 17770, 99e6};
  AlsKernelConfig config;
  config.solver = SolverKind::LuFp32;
  const double lu = update_phase_times(dev, shape, config).solve.seconds;
  config.solver = SolverKind::CgFp32;
  const double cg32 = update_phase_times(dev, shape, config).solve.seconds;
  config.solver = SolverKind::CgFp16;
  const double cg16 = update_phase_times(dev, shape, config).solve.seconds;
  EXPECT_GT(lu / cg32, 2.5);
  EXPECT_NEAR(cg32 / cg16, 2.0, 0.35);
}

TEST(KernelStats, EpochFasterOnNewerDevices) {
  AlsKernelConfig config;
  const double k = als_epoch_seconds(gpusim::DeviceSpec::kepler_k40(),
                                     480189, 17770, 99e6, config);
  const double m = als_epoch_seconds(gpusim::DeviceSpec::maxwell_titan_x(),
                                     480189, 17770, 99e6, config);
  const double p = als_epoch_seconds(gpusim::DeviceSpec::pascal_p100(),
                                     480189, 17770, 99e6, config);
  EXPECT_GT(k, m);
  EXPECT_GT(m, p);
}

TEST(KernelStats, SgdEpochMemoryBoundAndHalvedByFp16) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const double fp32 = sgd_epoch_seconds(dev, 99e6, 100, false);
  const double fp16 = sgd_epoch_seconds(dev, 99e6, 100, true);
  EXPECT_NEAR(fp32 / fp16, 2.0, 0.25);
}


// ---------- additional property sweeps & failure injection ----------

class AlsLatentDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AlsLatentDimSweep, ConvergesForAnyF) {
  // Includes f=17 (prime → degenerate tile of 1) and non-multiples of the
  // default tile 10, exercising the pick_tile fallback.
  const std::size_t f = GetParam();
  const auto data = small_dataset(6000, 200 + f);
  AlsOptions options;
  options.f = f;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  AlsEngine als(data.ratings, options);
  double first = 0;
  double last = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    als.run_epoch();
    const double r =
        rmse(data.ratings, als.user_factors(), als.item_factors());
    if (epoch == 0) {
      first = r;
    }
    last = r;
  }
  EXPECT_LT(last, first * 1.001) << "f=" << f;
  EXPECT_LT(last, 0.6) << "f=" << f;
  for (const real_t v : als.user_factors().data()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(LatentDims, AlsLatentDimSweep,
                         ::testing::Values(4, 8, 12, 17, 24, 40));

TEST(Als, RejectsNonFiniteRatings) {
  RatingsCoo coo(2, 2);
  coo.add(0, 0, std::numeric_limits<real_t>::quiet_NaN());
  coo.add(1, 1, 1.0f);
  AlsOptions options;
  options.f = 4;
  EXPECT_THROW(AlsEngine(coo, options), CheckError);

  RatingsCoo inf_coo(2, 2);
  inf_coo.add(0, 0, std::numeric_limits<real_t>::infinity());
  inf_coo.add(1, 1, 1.0f);
  EXPECT_THROW(AlsEngine(inf_coo, options), CheckError);
}

TEST(KernelStats, TraceDrivenTimesAreDeterministic) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  UpdateShape shape{480189, 17770, 99e6};
  AlsKernelConfig config;
  const auto a = update_phase_times(dev, shape, config);
  const auto b = update_phase_times(dev, shape, config);
  EXPECT_DOUBLE_EQ(a.load.seconds, b.load.seconds);
  EXPECT_DOUBLE_EQ(a.total_seconds(), b.total_seconds());
}

TEST(KernelStats, EpochTimeMonotoneInProblemSize) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  AlsKernelConfig config;
  const double base = als_epoch_seconds(dev, 1e5, 1e4, 1e7, config);
  EXPECT_LT(base, als_epoch_seconds(dev, 2e5, 1e4, 2e7, config));
  AlsKernelConfig bigger_f = config;
  bigger_f.f = 200;
  bigger_f.tile = 10;
  EXPECT_LT(base, als_epoch_seconds(dev, 1e5, 1e4, 1e7, bigger_f));
}

}  // namespace
}  // namespace cumf
