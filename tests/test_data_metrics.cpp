// Tests for the synthetic data generators, dataset presets, implicit
// conversion, I/O, and the metrics (RMSE, convergence tracking, roofline).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "data/generator.hpp"
#include "data/implicit.hpp"
#include "data/io.hpp"
#include "data/loaders.hpp"
#include "data/presets.hpp"
#include "common/rng.hpp"
#include "metrics/convergence.hpp"
#include "metrics/ranking.hpp"
#include "metrics/rmse.hpp"
#include "metrics/roofline.hpp"
#include "sparse/csr.hpp"

namespace cumf {
namespace {

SyntheticConfig tiny_config() {
  SyntheticConfig cfg;
  cfg.m = 200;
  cfg.n = 60;
  cfg.nnz = 3000;
  cfg.true_rank = 4;
  cfg.mean = 3.5;
  cfg.signal_std = 0.6;
  cfg.noise_std = 0.3;
  cfg.seed = 1;
  return cfg;
}

// ---------- generator ----------

TEST(Generator, ProducesRequestedShape) {
  const auto cfg = tiny_config();
  const auto data = generate_synthetic(cfg);
  EXPECT_EQ(data.ratings.rows(), cfg.m);
  EXPECT_EQ(data.ratings.cols(), cfg.n);
  EXPECT_EQ(data.ratings.nnz(), cfg.nnz);
  EXPECT_TRUE(data.ratings.is_canonical());
  EXPECT_EQ(data.true_user_factors.rows(), cfg.m);
  EXPECT_EQ(data.true_item_factors.rows(), cfg.n);
}

TEST(Generator, EveryRowAndColumnObserved) {
  const auto data = generate_synthetic(tiny_config());
  std::set<index_t> rows;
  std::set<index_t> cols;
  for (const Rating& e : data.ratings.entries()) {
    rows.insert(e.u);
    cols.insert(e.v);
  }
  EXPECT_EQ(rows.size(), 200u);
  EXPECT_EQ(cols.size(), 60u);
}

TEST(Generator, ValuesRespectRatingScale) {
  auto cfg = tiny_config();
  cfg.rating_lo = 1.0;
  cfg.rating_hi = 5.0;
  const auto data = generate_synthetic(cfg);
  for (const Rating& e : data.ratings.entries()) {
    EXPECT_GE(e.r, 1.0f);
    EXPECT_LE(e.r, 5.0f);
  }
}

TEST(Generator, NoiseFloorNearConfiguredNoise) {
  auto cfg = tiny_config();
  cfg.nnz = 8000;
  const auto data = generate_synthetic(cfg);
  // Clipping can only shrink the observed noise.
  EXPECT_LE(data.noise_floor_rmse, cfg.noise_std * 1.05);
  EXPECT_GE(data.noise_floor_rmse, cfg.noise_std * 0.7);
}

TEST(Generator, PlantedModelBeatsMeanPredictor) {
  const auto cfg = tiny_config();
  const auto data = generate_synthetic(cfg);
  const double planted = rmse(data.ratings, data.true_user_factors,
                              data.true_item_factors);
  // The planted factors ignore the mean offset, so compare against the
  // variance of the data rather than predicting with them directly:
  // the residual after removing the planted signal must be ≈ noise + mean².
  // Simpler invariant: generator reports a floor well below the data stddev.
  double sq = 0.0;
  const double mean = data.ratings.mean_value();
  for (const Rating& e : data.ratings.entries()) {
    sq += (e.r - mean) * (e.r - mean);
  }
  const double data_std =
      std::sqrt(sq / static_cast<double>(data.ratings.nnz()));
  EXPECT_LT(data.noise_floor_rmse, data_std);
  (void)planted;
}

TEST(Generator, DegreesAreSkewed) {
  SyntheticConfig cfg = tiny_config();
  cfg.m = 2000;
  cfg.n = 500;
  cfg.nnz = 12000;
  cfg.col_zipf = 1.1;
  const auto data = generate_synthetic(cfg);
  const auto csc = CsrMatrix::from_coo(data.ratings).transposed();
  // Popular columns should have far more than the mean degree (the cap of
  // m per column is far away at this density).
  const double mean_deg = 12000.0 / 500.0;
  EXPECT_GT(csc.max_row_degree(), 3.0 * mean_deg);
}

TEST(Generator, DeterministicForSeed) {
  const auto a = generate_synthetic(tiny_config());
  const auto b = generate_synthetic(tiny_config());
  ASSERT_EQ(a.ratings.nnz(), b.ratings.nnz());
  EXPECT_EQ(a.ratings.entries(), b.ratings.entries());
}

TEST(Generator, RejectsImpossibleConfigs) {
  auto cfg = tiny_config();
  cfg.nnz = 10;  // < m + n
  EXPECT_THROW(generate_synthetic(cfg), CheckError);
  cfg = tiny_config();
  cfg.nnz = static_cast<nnz_t>(cfg.m) * cfg.n + 1;
  EXPECT_THROW(generate_synthetic(cfg), CheckError);
  cfg = tiny_config();
  cfg.rating_lo = 5.0;
  cfg.rating_hi = 1.0;
  EXPECT_THROW(generate_synthetic(cfg), CheckError);
}

// ---------- presets ----------

TEST(Presets, MatchTableIIFullScaleStats) {
  const auto netflix = DatasetPreset::netflix();
  EXPECT_EQ(netflix.full_m, 480'189u);
  EXPECT_EQ(netflix.full_n, 17'770u);
  EXPECT_NEAR(static_cast<double>(netflix.full_nnz), 99e6, 1e6);
  EXPECT_EQ(netflix.paper_f, 100);
  EXPECT_NEAR(netflix.paper_lambda, 0.05, 1e-9);
  EXPECT_NEAR(netflix.target_rmse, 0.92, 1e-9);

  const auto yahoo = DatasetPreset::yahoomusic();
  EXPECT_NEAR(yahoo.paper_lambda, 1.4, 1e-9);
  EXPECT_NEAR(yahoo.target_rmse, 22.0, 1e-9);

  const auto wiki = DatasetPreset::hugewiki();
  EXPECT_NEAR(static_cast<double>(wiki.full_nnz), 3.1e9, 1e7);
  EXPECT_NEAR(wiki.target_rmse, 0.52, 1e-9);
}

TEST(Presets, ScaledShapesPreserveAspectRatio) {
  const auto netflix = DatasetPreset::netflix();
  const double full_ratio = static_cast<double>(netflix.full_m) /
                            static_cast<double>(netflix.full_n);
  const double scaled_ratio = static_cast<double>(netflix.scaled.m) /
                              static_cast<double>(netflix.scaled.n);
  EXPECT_NEAR(scaled_ratio / full_ratio, 1.0, 0.25);
}

TEST(Presets, ResizedScalesNnz) {
  const auto preset = DatasetPreset::netflix().resized(0.1);
  EXPECT_NEAR(static_cast<double>(preset.scaled.nnz),
              0.1 * static_cast<double>(DatasetPreset::netflix().scaled.nnz),
              2000.0);
  EXPECT_GE(preset.scaled.nnz, preset.scaled.m + preset.scaled.n);
  // Generation must actually work at the reduced size.
  const auto data = generate(preset);
  EXPECT_EQ(data.ratings.nnz(), preset.scaled.nnz);
}

// ---------- implicit ----------

TEST(Implicit, ThresholdFiltersAndShiftsStrength) {
  RatingsCoo coo(2, 3);
  coo.add(0, 0, 5.0f);
  coo.add(0, 1, 2.0f);
  coo.add(1, 2, 4.0f);
  const auto implicit = to_implicit(coo, 4.0f, 40.0);
  ASSERT_EQ(implicit.interactions.nnz(), 2u);  // the 2-star entry dropped
  for (const Rating& e : implicit.interactions.entries()) {
    EXPECT_GE(e.r, 1.0f);
  }
  EXPECT_NEAR(confidence(implicit, 2.0f), 81.0, 1e-9);
}

TEST(Implicit, RejectsNonPositiveAlpha) {
  RatingsCoo coo(1, 1);
  EXPECT_THROW(to_implicit(coo, 1.0f, 0.0), CheckError);
}

// ---------- io ----------

TEST(Io, RoundTripThroughStream) {
  auto data = generate_synthetic(tiny_config());
  std::stringstream ss;
  write_ratings(ss, data.ratings);
  const auto back = read_ratings(ss);
  EXPECT_EQ(back.rows(), data.ratings.rows());
  EXPECT_EQ(back.cols(), data.ratings.cols());
  ASSERT_EQ(back.nnz(), data.ratings.nnz());
  for (std::size_t i = 0; i < back.nnz(); ++i) {
    EXPECT_EQ(back.entries()[i].u, data.ratings.entries()[i].u);
    EXPECT_EQ(back.entries()[i].v, data.ratings.entries()[i].v);
    EXPECT_NEAR(back.entries()[i].r, data.ratings.entries()[i].r, 1e-5);
  }
}

TEST(Io, RejectsMalformedInput) {
  std::stringstream truncated("3 3 5\n0 0 1.0\n");
  EXPECT_THROW(read_ratings(truncated), CheckError);
  std::stringstream bad_index("2 2 1\n5 0 1.0\n");
  EXPECT_THROW(read_ratings(bad_index), CheckError);
  std::stringstream zero_dims("0 2 0\n");
  EXPECT_THROW(read_ratings(zero_dims), CheckError);
}

TEST(Io, FileRoundTrip) {
  auto cfg = tiny_config();
  cfg.nnz = 400;
  const auto data = generate_synthetic(cfg);
  const std::string path = "/tmp/cumf_io_test.txt";
  write_ratings_file(path, data.ratings);
  const auto back = read_ratings_file(path);
  EXPECT_EQ(back.nnz(), data.ratings.nnz());
  std::remove(path.c_str());
  EXPECT_THROW(read_ratings_file("/nonexistent/nope.txt"), CheckError);
}

// ---------- rmse ----------

TEST(Rmse, ZeroForPerfectFactors) {
  Matrix x(2, 2);
  Matrix theta(2, 2);
  x(0, 0) = 1;
  x(1, 1) = 1;
  theta(0, 0) = 3;
  theta(1, 1) = 4;
  RatingsCoo coo(2, 2);
  coo.add(0, 0, 3.0f);  // x_0·θ_0 = 3
  coo.add(1, 1, 4.0f);  // x_1·θ_1 = 4
  EXPECT_NEAR(rmse(coo, x, theta), 0.0, 1e-6);
  EXPECT_NEAR(predict(x, theta, 0, 0), 3.0f, 1e-6);
}

TEST(Rmse, KnownError) {
  Matrix x(1, 1);
  Matrix theta(1, 1);
  x(0, 0) = 1;
  theta(0, 0) = 1;  // prediction = 1 everywhere
  RatingsCoo coo(1, 1);
  coo.add(0, 0, 4.0f);  // error 3
  EXPECT_NEAR(rmse(coo, x, theta), 3.0, 1e-6);
}

TEST(Rmse, EmptySetIsZero) {
  Matrix x(1, 1);
  Matrix theta(1, 1);
  EXPECT_EQ(rmse(RatingsCoo(1, 1), x, theta), 0.0);
}

TEST(Rmse, RegularizedLossPenalizesFactorNorms) {
  Matrix x(1, 1);
  Matrix theta(1, 1);
  x(0, 0) = 2;
  theta(0, 0) = 2;  // prediction 4
  RatingsCoo coo(1, 1);
  coo.add(0, 0, 4.0f);  // zero data error
  // loss = 0 + λ·(1·‖x‖² + 1·‖θ‖²) = λ·8
  EXPECT_NEAR(regularized_loss(coo, x, theta, 0.5), 4.0, 1e-6);
}

// ---------- convergence ----------

TEST(Convergence, TimeToTargetInterpolatesForward) {
  ConvergenceTracker t;
  t.record(1.0, 1.5, 1);
  t.record(2.0, 1.0, 2);
  t.record(3.0, 0.9, 3);
  ASSERT_TRUE(t.time_to(1.0).has_value());
  EXPECT_DOUBLE_EQ(*t.time_to(1.0), 2.0);
  EXPECT_EQ(*t.epochs_to(0.95), 3);
  EXPECT_FALSE(t.time_to(0.5).has_value());
  EXPECT_DOUBLE_EQ(t.best_rmse(), 0.9);
}

TEST(Convergence, RejectsNonMonotoneTime) {
  ConvergenceTracker t;
  t.record(2.0, 1.0, 1);
  EXPECT_THROW(t.record(1.0, 0.9, 2), CheckError);
}

TEST(Convergence, ToCsvHasHeaderAndOneRowPerEpoch) {
  ConvergenceTracker t;
  t.record(1.0, 1.5, 1);
  t.record(2.5, 1.25, 2);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv.rfind("epoch,seconds,rmse\n", 0), 0u);
  EXPECT_NE(csv.find("1,1,1.5\n"), std::string::npos);
  EXPECT_NE(csv.find("2,2.5,1.25\n"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3);
}

TEST(Convergence, SeriesContainsAllPoints) {
  ConvergenceTracker t;
  t.record(1.0, 1.5, 1);
  t.record(2.0, 1.2, 2);
  const std::string s = t.series("label");
  EXPECT_NE(s.find("label"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("1.2"), std::string::npos);
}

// ---------- roofline ----------

TEST(Roofline, TableIComplexityRatios) {
  const double nnz = 1e8;
  const double m = 5e5;
  const double n = 2e4;
  const int f = 100;
  const auto als = als_complexity(nnz, m, n, f);
  const auto sgd = sgd_complexity(nnz, f);
  // Table I: ALS hermitian C/M ratio ≈ f/4 per byte (f per element);
  // SGD's C/M ≈ 1 per element. The f-fold gap must be visible.
  const double als_intensity = als.hermitian_compute / als.hermitian_memory;
  const double sgd_intensity = sgd.compute / sgd.memory;
  EXPECT_GT(als_intensity / sgd_intensity, 10.0);
  // Solve dominated by f³ term for LU.
  EXPECT_GT(als.solve_compute, (m + n) * 0.5 * 100.0 * 100.0 * 100.0 / 3.0);
}

TEST(Roofline, CgCutsSolveComplexity) {
  const auto lu = als_complexity(1e8, 5e5, 2e4, 100);
  const auto cg = als_complexity_cg(1e8, 5e5, 2e4, 100, 6);
  // O(f³) → O(fs·f²): for f=100, fs=6 that is a ~5.5x compute reduction.
  EXPECT_GT(lu.solve_compute / cg.solve_compute, 4.0);
  EXPECT_LT(lu.solve_compute / cg.solve_compute, 8.0);
}

TEST(Roofline, AlsComplexityPinnedAtSmallF) {
  // Hand-derived at nnz=10, m=3, n=2, f=2 — the classifier inputs are
  // anchored to exact FLOP/byte counts, not just ratios:
  //   hermitian_compute = nnz·f²            = 10·4        = 40
  //   hermitian_memory  = (nnz·f+(m+n)f²)·4 = (20+20)·4   = 160
  //   solve_compute     = (m+n)·(2/3)f³     = 5·(2/3)·8   = 80/3
  //   solve_memory      = (m+n)·f²·4        = 5·4·4       = 80
  const auto c = als_complexity(10.0, 3.0, 2.0, 2);
  EXPECT_DOUBLE_EQ(c.hermitian_compute, 40.0);
  EXPECT_DOUBLE_EQ(c.hermitian_memory, 160.0);
  EXPECT_DOUBLE_EQ(c.solve_compute, 80.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.solve_memory, 80.0);
}

TEST(Roofline, AlsCgComplexityPinnedAtSmallF) {
  // Same shape, CG with fs=3 truncation; hermitian terms unchanged:
  //   solve_compute = (m+n)·fs·2f² = 5·3·2·4 = 120
  //   solve_memory  = (m+n)·fs·f²·4 = 5·3·4·4 = 240
  const auto c = als_complexity_cg(10.0, 3.0, 2.0, 2, 3);
  EXPECT_DOUBLE_EQ(c.hermitian_compute, 40.0);
  EXPECT_DOUBLE_EQ(c.hermitian_memory, 160.0);
  EXPECT_DOUBLE_EQ(c.solve_compute, 120.0);
  EXPECT_DOUBLE_EQ(c.solve_memory, 240.0);
}

TEST(Roofline, SgdComplexityPinnedAtSmallF) {
  // nnz=10, f=2: compute = 10·10f = 200, memory = 10·16f = 320.
  const auto c = sgd_complexity(10.0, 2);
  EXPECT_DOUBLE_EQ(c.compute, 200.0);
  EXPECT_DOUBLE_EQ(c.memory, 320.0);
}

TEST(Roofline, Fp16PackTrafficCountsReadAndWrite) {
  // 4 bytes read (FP32 source) + 2 written (FP16 dest) per element.
  EXPECT_DOUBLE_EQ(fp16_pack_traffic(10.0), 60.0);
  EXPECT_DOUBLE_EQ(fp16_pack_traffic(0.0), 0.0);
}

TEST(Roofline, OpCountsAccumulate) {
  OpCounts a{100.0, 10.0, 6.0};
  OpCounts b{50.0, 4.0, 0.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.flops, 150.0);
  EXPECT_DOUBLE_EQ(a.bytes(), 20.0);
  EXPECT_DOUBLE_EQ(a.intensity(), 7.5);
  EXPECT_EQ(OpCounts{}.intensity(), 0.0);
}


// ---------- flexible loaders ----------

// ---------- ranking ----------

TEST(Ranking, AucRowLookupSurvivesEmptyLeadingAndTrailingRows) {
  // Users 0–1 and 6–7 have no interactions; the sampled-position → row
  // mapping (upper_bound over row_ptr) must still attribute every sample
  // to its true owner. Factors are built so the owning row wins every
  // comparison (+1 vs −1) while any other row would tie at −1 vs −1 —
  // a mis-mapped row drags the estimate to 0.5.
  const index_t m = 8;
  const index_t n = 10;
  RatingsCoo obs(m, n);
  obs.add(2, 1, 1.0F);
  obs.add(3, 4, 1.0F);
  obs.add(4, 7, 1.0F);
  obs.add(5, 9, 1.0F);
  obs.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(obs);

  Matrix x(m, m);  // one-hot user factors: score(u, v) = theta(v, u)
  for (index_t u = 0; u < m; ++u) {
    x(u, u) = 1.0F;
  }
  Matrix theta(n, m);
  for (index_t v = 0; v < n; ++v) {
    for (index_t u = 0; u < m; ++u) {
      theta(v, u) = -1.0F;
    }
  }
  for (const Rating& e : obs.entries()) {
    theta(e.v, e.u) = 1.0F;
  }

  Rng rng(17);
  const double auc = auc_observed_vs_random(x, theta, csr, 400, rng);
  // Exact value depends on how often the negative draw collides with the
  // observed item (a tie, worth 0.5); anything near 0.5 means the sample
  // was scored against the wrong user's factors.
  EXPECT_GT(auc, 0.85);
  EXPECT_LE(auc, 1.0);
}

TEST(Ranking, AucIsExactlyHalfWhenAllScoresTie) {
  // All-zero factors make every comparison a tie; the tie accounting
  // (0.5 credit each) must land on exactly 0.5, not 0 or 1.
  RatingsCoo obs(3, 5);
  obs.add(0, 0, 1.0F);
  obs.add(1, 2, 1.0F);
  obs.add(2, 4, 1.0F);
  obs.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(obs);
  const Matrix x(3, 4);
  const Matrix theta(5, 4);
  Rng rng(23);
  EXPECT_DOUBLE_EQ(auc_observed_vs_random(x, theta, csr, 128, rng), 0.5);
}

TEST(Ranking, TopKBreaksTiesByAscendingItemId) {
  // Items 1 and 2 score identically; the deterministic tie-break (lower
  // item id first) keeps recommendation lists reproducible across runs.
  Matrix x(1, 1);
  x(0, 0) = 1.0F;
  Matrix theta(4, 1);
  theta(0, 0) = 2.0F;
  theta(1, 0) = 1.0F;
  theta(2, 0) = 1.0F;
  theta(3, 0) = 3.0F;
  RatingsCoo seen(1, 4);
  seen.add(0, 3, 5.0F);  // the top-scoring item is already rated
  seen.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(seen);

  const auto recs = recommend_top_k(x, theta, csr, 0, 3);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].item, 0u);  // rated item 3 excluded despite score 3.0
  EXPECT_EQ(recs[1].item, 1u);  // tie with item 2 → lower id first
  EXPECT_EQ(recs[2].item, 2u);
  EXPECT_EQ(recs[1].score, recs[2].score);
}

TEST(Ranking, TopKClampsToUnseenCandidates) {
  Matrix x(1, 2);
  x(0, 0) = 1.0F;
  Matrix theta(3, 2);
  theta(0, 0) = 1.0F;
  theta(1, 0) = 2.0F;
  theta(2, 0) = 3.0F;
  RatingsCoo seen(1, 3);
  seen.add(0, 2, 4.0F);
  seen.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(seen);

  // k far beyond the candidate count returns every unseen item, best first.
  const auto recs = recommend_top_k(x, theta, csr, 0, 100);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 1u);
  EXPECT_EQ(recs[1].item, 0u);
  EXPECT_THROW(recommend_top_k(x, theta, csr, 5, 2), CheckError);
}

TEST(Loaders, ParsesTripletFormat) {
  std::stringstream ss("0 0 4.0\n# a comment\n\n2 1 3.5\n1 2 1.0\n");
  const auto coo = load_ratings(ss, LoaderOptions{});
  EXPECT_EQ(coo.rows(), 3u);
  EXPECT_EQ(coo.cols(), 3u);
  ASSERT_EQ(coo.nnz(), 3u);
  EXPECT_EQ(coo.entries()[1].u, 2u);
  EXPECT_NEAR(coo.entries()[1].r, 3.5f, 1e-6);
}

TEST(Loaders, ParsesMovieLensFormat) {
  std::stringstream ss("1::10::5::978300760\n2::3::4.5::978302109\r\n");
  LoaderOptions options;
  options.format = RatingsFormat::MovieLens;
  options.one_based = true;
  const auto coo = load_ratings(ss, options);
  EXPECT_EQ(coo.rows(), 2u);   // ids shifted to 0-based
  EXPECT_EQ(coo.cols(), 10u);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[0].u, 0u);
  EXPECT_EQ(coo.entries()[0].v, 9u);
  EXPECT_NEAR(coo.entries()[1].r, 4.5f, 1e-6);
}

TEST(Loaders, RejectsMalformedAndEmptyInput) {
  std::stringstream garbage("1 2\n");
  EXPECT_THROW(load_ratings(garbage, LoaderOptions{}), CheckError);
  std::stringstream empty("# only a comment\n");
  EXPECT_THROW(load_ratings(empty, LoaderOptions{}), CheckError);
  std::stringstream negative("0 0 1.0\n");
  LoaderOptions one_based;
  one_based.one_based = true;  // 0 becomes -1: invalid
  EXPECT_THROW(load_ratings(negative, one_based), CheckError);
  std::stringstream bad_ml("1::x::3\n");
  LoaderOptions ml;
  ml.format = RatingsFormat::MovieLens;
  EXPECT_THROW(load_ratings(bad_ml, ml), CheckError);
}

TEST(Loaders, FileLoaderMatchesStreamLoader) {
  // The file path reads in 1 MiB blocks with in-place line slicing; it must
  // agree entry-for-entry with the istream path on a file big enough to
  // straddle several block boundaries, with CRLF endings, comments, and no
  // trailing newline on the last line.
  std::ostringstream content;
  content << "# header comment\r\n";
  for (int i = 0; i < 130000; ++i) {
    content << (i % 311) << ' ' << (i % 97) << ' ' << (1.0 + i % 9 * 0.5)
            << (i % 7 == 0 ? "\r\n" : "\n");
  }
  content << "5 5 2.5";  // no trailing newline
  const std::string text = content.str();
  ASSERT_GT(text.size(), std::size_t{1} << 20);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "loader_blocks.txt")
          .string();
  std::ofstream(path, std::ios::binary) << text;

  std::istringstream ss(text);
  const RatingsCoo from_stream = load_ratings(ss, LoaderOptions{});
  const RatingsCoo from_file = load_ratings_file(path, LoaderOptions{});
  EXPECT_EQ(from_file.rows(), from_stream.rows());
  EXPECT_EQ(from_file.cols(), from_stream.cols());
  ASSERT_EQ(from_file.nnz(), from_stream.nnz());
  for (std::size_t i = 0; i < from_file.entries().size(); ++i) {
    ASSERT_EQ(from_file.entries()[i].u, from_stream.entries()[i].u);
    ASSERT_EQ(from_file.entries()[i].v, from_stream.entries()[i].v);
    ASSERT_EQ(from_file.entries()[i].r, from_stream.entries()[i].r);
  }
  std::filesystem::remove(path);
}

TEST(Loaders, FileLoaderNamesTheMalformedLine) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "loader_bad.txt")
          .string();
  std::ofstream(path) << "0 0 4.0\n1 1 3.0\nnot a rating\n";
  try {
    load_ratings_file(path, LoaderOptions{});
    FAIL() << "malformed line must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "malformed rating on line 3: 'not a rating'"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Loaders, RoundTripsThroughOwnWriter) {
  auto data = generate_synthetic(tiny_config());
  std::stringstream ss;
  for (const Rating& e : data.ratings.entries()) {
    ss << e.u << ' ' << e.v << ' ' << e.r << '\n';
  }
  const auto back = load_ratings(ss, LoaderOptions{});
  EXPECT_EQ(back.nnz(), data.ratings.nnz());
  // Dimensions are inferred, so they may be tighter than the generator's.
  EXPECT_LE(back.rows(), data.ratings.rows());
  EXPECT_LE(back.cols(), data.ratings.cols());
}

}  // namespace
}  // namespace cumf
