// Tests for the dense linear algebra kernels: Cholesky, LU, CG (FP32/FP16),
// GEMM/SYRK, vector helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/dense.hpp"
#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"

namespace cumf {
namespace {

/// Random SPD matrix M·Mᵀ + ridge·I (row-major, full storage).
std::vector<real_t> random_spd(std::size_t n, real_t ridge,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> m(n * n);
  for (auto& v : m) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  std::vector<real_t> a(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += static_cast<double>(m[i * n + k]) *
               static_cast<double>(m[j * n + k]);
      }
      a[i * n + j] = static_cast<real_t>(acc);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] += ridge;
  }
  return a;
}

std::vector<real_t> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> v(n);
  for (auto& x : v) {
    x = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  return v;
}

double residual_norm(std::size_t n, std::span<const real_t> a,
                     std::span<const real_t> x, std::span<const real_t> b) {
  double worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += static_cast<double>(a[i * n + j]) * static_cast<double>(x[j]);
    }
    worst = std::max(worst, std::abs(acc - static_cast<double>(b[i])));
  }
  return worst;
}

// ---------- vector helpers ----------

TEST(Dense, DotAxpyScalNrm2) {
  std::vector<real_t> a{1, 2, 3};
  std::vector<real_t> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  axpy(2.0f, a, b);  // b = {6, 9, 12}
  EXPECT_EQ(b[0], 6.0f);
  EXPECT_EQ(b[2], 12.0f);
  scal(0.5f, b);
  EXPECT_EQ(b[1], 4.5f);
  EXPECT_NEAR(nrm2(a), std::sqrt(14.0), 1e-6);
}

TEST(Dense, MatrixIndexingAndBounds) {
  Matrix m(3, 2, 1.0f);
  m(2, 1) = 7.0f;
  EXPECT_EQ(m(2, 1), 7.0f);
  EXPECT_EQ(m.row(2)[1], 7.0f);
  EXPECT_THROW(m(3, 0), CheckError);
  EXPECT_THROW(m(0, 2), CheckError);
  EXPECT_THROW(m.row(5), CheckError);
}

TEST(Dense, SymvMatchesManual) {
  const std::size_t n = 4;
  const auto a = random_spd(n, 1.0f, 21);
  const auto x = random_vector(n, 22);
  std::vector<real_t> y(n);
  symv(n, a, x, y);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += static_cast<double>(a[i * n + j]) * static_cast<double>(x[j]);
    }
    EXPECT_NEAR(y[i], acc, 1e-4);
  }
}

// ---------- Cholesky ----------

class SpdSolveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpdSolveSweep, CholeskySolvesRandomSystem) {
  const std::size_t n = GetParam();
  const auto a = random_spd(n, 0.5f, 100 + n);
  const auto b = random_vector(n, 200 + n);
  std::vector<real_t> x(n);
  ASSERT_TRUE(solve_spd(n, a, b, x));
  EXPECT_LT(residual_norm(n, a, x, b), 1e-2 * static_cast<double>(n));
}

TEST_P(SpdSolveSweep, LuSolvesRandomSystem) {
  const std::size_t n = GetParam();
  const auto a = random_spd(n, 0.5f, 300 + n);
  const auto b = random_vector(n, 400 + n);
  std::vector<real_t> x(n);
  ASSERT_TRUE(solve_lu(n, a, b, x));
  EXPECT_LT(residual_norm(n, a, x, b), 1e-2 * static_cast<double>(n));
}

TEST_P(SpdSolveSweep, CgWithFullIterationsMatchesExact) {
  const std::size_t n = GetParam();
  const auto a = random_spd(n, 1.0f, 500 + n);
  const auto b = random_vector(n, 600 + n);
  std::vector<real_t> exact(n);
  ASSERT_TRUE(solve_spd(n, a, b, exact));
  std::vector<real_t> x(n, 0.0f);
  // CG reaches the exact solution in at most n steps (paper §IV-A).
  const auto result = cg_solve<float>(n, a, b, x,
                                      static_cast<std::uint32_t>(2 * n),
                                      1e-6f);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(x, exact), 5e-2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40, 100));

TEST(Cholesky, RejectsIndefiniteMatrix) {
  // [[1, 2], [2, 1]] has a negative eigenvalue.
  std::vector<real_t> a{1, 2, 2, 1};
  std::vector<real_t> scratch = a;
  EXPECT_FALSE(cholesky_factor(2, scratch));
}

TEST(Cholesky, KnownFactorization) {
  // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]].
  std::vector<real_t> a{4, 2, 2, 3};
  ASSERT_TRUE(cholesky_factor(2, a));
  EXPECT_NEAR(a[0], 2.0f, 1e-6);
  EXPECT_NEAR(a[2], 1.0f, 1e-6);
  EXPECT_NEAR(a[3], std::sqrt(2.0f), 1e-6);
}

// ---------- LU ----------

TEST(Lu, DetectsSingularMatrix) {
  std::vector<real_t> a{1, 2, 2, 4};  // rank 1
  std::vector<index_t> pivots(2);
  EXPECT_FALSE(lu_factor(2, a, pivots));
}

TEST(Lu, SolvesNonSymmetricSystem) {
  // LU must handle general matrices, unlike Cholesky.
  std::vector<real_t> a{0, 2, 3, 1};  // needs pivoting (a00 = 0)
  std::vector<real_t> b{4, 5};
  std::vector<real_t> x(2);
  ASSERT_TRUE(solve_lu(2, a, b, x));
  // 2·x1 = 4 → x1 = 2; 3·x0 + x1 = 5 → x0 = 1.
  EXPECT_NEAR(x[0], 1.0f, 1e-5);
  EXPECT_NEAR(x[1], 2.0f, 1e-5);
}

// ---------- CG specifics ----------

TEST(Cg, TruncationLimitsIterations) {
  const std::size_t n = 50;
  const auto a = random_spd(n, 0.1f, 900);
  const auto b = random_vector(n, 901);
  std::vector<real_t> x(n, 0.0f);
  const auto result = cg_solve<float>(n, a, b, x, 6, 1e-20f);
  EXPECT_EQ(result.iterations, 6u);
  EXPECT_FALSE(result.converged);
}

TEST(Cg, ToleranceStopsEarly) {
  const std::size_t n = 20;
  const auto a = random_spd(n, 5.0f, 902);
  const auto b = random_vector(n, 903);
  std::vector<real_t> x(n, 0.0f);
  const auto result = cg_solve<float>(n, a, b, x, 100, 1e-3f);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 100u);
  EXPECT_LT(result.residual_norm, 1e-3);
}

TEST(Cg, WarmStartAtSolutionTerminatesImmediately) {
  const std::size_t n = 10;
  const auto a = random_spd(n, 1.0f, 904);
  std::vector<real_t> truth = random_vector(n, 905);
  std::vector<real_t> b(n);
  symv(n, a, truth, b);
  std::vector<real_t> x = truth;  // warm start = exact solution
  const auto result = cg_solve<float>(n, a, b, x, 10, 1e-2f);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 1u);
}

TEST(Cg, Fp16StorageStillConverges) {
  const std::size_t n = 24;
  const auto a32 = random_spd(n, 2.0f, 906);
  std::vector<half> a16(n * n);
  for (std::size_t i = 0; i < a32.size(); ++i) {
    a16[i] = half(a32[i]);
  }
  const auto b = random_vector(n, 907);
  std::vector<real_t> exact(n);
  ASSERT_TRUE(solve_spd(n, a32, b, exact));

  std::vector<real_t> x(n, 0.0f);
  cg_solve<half>(n, std::span<const half>(a16), b, x, 40, 1e-4f);
  // FP16 storage perturbs A by ≤ 2^-11 relative — the solution should be
  // close to the FP32 one, not identical.
  EXPECT_LT(max_abs_diff(x, exact), 0.05);
}

TEST(Cg, RejectsBadArguments) {
  std::vector<real_t> a{1.0f};
  std::vector<real_t> b{1.0f};
  std::vector<real_t> x{0.0f};
  EXPECT_THROW(cg_solve<float>(1, a, b, x, 0, 1e-4f), CheckError);
  EXPECT_THROW(
      cg_solve<float>(2, a, b, x, 1, 1e-4f), CheckError);
}

// ---------- GEMM / SYRK ----------

TEST(Gemm, MatchesBruteForce) {
  const std::size_t m = 4;
  const std::size_t k = 3;
  const std::size_t n = 5;
  const auto a = random_vector(m * k, 908);
  const auto b = random_vector(k * n, 909);
  std::vector<real_t> c(m * n, 1.0f);
  gemm(m, n, k, 2.0f, a, b, 0.5f, c);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(b[p * n + j]);
      }
      EXPECT_NEAR(c[i * n + j], 2.0 * acc + 0.5, 1e-4);
    }
  }
}

TEST(Syrk, ProducesSymmetricGram) {
  const std::size_t n = 6;
  const std::size_t k = 4;
  const auto a = random_vector(n * k, 910);
  std::vector<real_t> c(n * n, 0.0f);
  syrk(n, k, 1.0f, a, 0.0f, c);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[i * n + j], c[j * n + i]);
      double acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(a[j * k + p]);
      }
      EXPECT_NEAR(c[i * n + j], acc, 1e-4);
    }
  }
}

TEST(Gemm, ValidatesShapes) {
  std::vector<real_t> a(6), b(6), c(5);
  EXPECT_THROW(gemm(2, 3, 3, 1.0f, a, b, 0.0f, c), CheckError);
}


// ---------- preconditioned CG ----------

TEST(Pcg, MatchesCgOnWellConditionedSystem) {
  const std::size_t n = 20;
  const auto a = random_spd(n, 2.0f, 950);
  const auto b = random_vector(n, 951);
  std::vector<real_t> x_cg(n, 0.0f);
  std::vector<real_t> x_pcg(n, 0.0f);
  cg_solve<float>(n, a, b, x_cg, 200, 1e-5f);
  pcg_solve<float>(n, a, b, x_pcg, 200, 1e-5f);
  EXPECT_LT(max_abs_diff(x_cg, x_pcg), 1e-2);
}

TEST(Pcg, FewerIterationsOnIllScaledSystem) {
  // Diagonal scaling spanning 4 orders of magnitude: plain CG crawls,
  // Jacobi preconditioning restores fast convergence.
  const std::size_t n = 40;
  auto a = random_spd(n, 1.0f, 952);
  std::vector<real_t> scale(n);
  Rng rng(953);
  for (std::size_t i = 0; i < n; ++i) {
    scale[i] = static_cast<real_t>(std::pow(10.0, rng.uniform(-2.0, 2.0)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] *= scale[i] * scale[j];
    }
  }
  const auto b = random_vector(n, 954);
  std::vector<real_t> x1(n, 0.0f);
  std::vector<real_t> x2(n, 0.0f);
  const auto plain = cg_solve<float>(n, std::span<const real_t>(a), b, x1,
                                     500, 1e-3f);
  const auto precond = pcg_solve<float>(n, std::span<const real_t>(a), b, x2,
                                        500, 1e-3f);
  EXPECT_TRUE(precond.converged);
  EXPECT_LT(precond.iterations, plain.iterations)
      << "PCG " << precond.iterations << " vs CG " << plain.iterations;
}

TEST(Pcg, RejectsNonPositiveDiagonal) {
  std::vector<real_t> a{0, 1, 1, 2};  // a00 = 0
  std::vector<real_t> b{1, 1};
  std::vector<real_t> x{0, 0};
  EXPECT_THROW(pcg_solve<float>(2, std::span<const real_t>(a), b, x, 5,
                                1e-4f),
               CheckError);
}

TEST(Pcg, HalfStorageWorks) {
  const std::size_t n = 12;
  const auto a32 = random_spd(n, 2.0f, 955);
  std::vector<half> a16(n * n);
  for (std::size_t i = 0; i < a32.size(); ++i) {
    a16[i] = half(a32[i]);
  }
  const auto b = random_vector(n, 956);
  std::vector<real_t> exact(n);
  ASSERT_TRUE(solve_spd(n, a32, b, exact));
  std::vector<real_t> x(n, 0.0f);
  pcg_solve<half>(n, std::span<const half>(a16), b, x, 60, 1e-4f);
  EXPECT_LT(max_abs_diff(x, exact), 0.05);
}

}  // namespace
}  // namespace cumf
