// Tests for the Spark-MLlib-style facade (paper §VII's MLlib integration).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/generator.hpp"
#include "metrics/rmse.hpp"
#include "mllib/als.hpp"
#include "sparse/split.hpp"

namespace cumf::mllib {
namespace {

SyntheticDataset dataset(std::uint64_t seed = 11) {
  SyntheticConfig cfg;
  cfg.m = 400;
  cfg.n = 150;
  cfg.nnz = 12'000;
  cfg.true_rank = 4;
  cfg.mean = 3.5;
  cfg.signal_std = 0.7;
  cfg.noise_std = 0.25;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

TEST(MllibAls, BuilderValidatesParameters) {
  Als als;
  EXPECT_THROW(als.set_rank(0), CheckError);
  EXPECT_THROW(als.set_reg_param(0.0), CheckError);
  EXPECT_THROW(als.set_max_iter(0), CheckError);
  EXPECT_THROW(als.set_alpha(-1.0), CheckError);
  EXPECT_THROW(als.set_num_blocks(0), CheckError);
  EXPECT_THROW(als.fit(RatingsCoo(1, 1)), CheckError);
  als.set_rank(16).set_max_iter(5);  // chainable
  EXPECT_EQ(als.rank(), 16);
  EXPECT_EQ(als.max_iter(), 5);
}

TEST(MllibAls, FitExplicitReachesLowTestRmse) {
  const auto data = dataset();
  Rng rng(3);
  const auto split = split_holdout(data.ratings, 0.1, rng);

  const auto model = Als()
                         .set_rank(16)
                         .set_reg_param(0.05)
                         .set_max_iter(8)
                         .set_solver(SolverKind::CgFp16, 6)
                         .fit(split.train);
  const double r =
      rmse(split.test, model.user_factors(), model.item_factors());
  EXPECT_LT(r, 1.5 * data.noise_floor_rmse);
  EXPECT_EQ(model.rank(), 16);
}

TEST(MllibAls, NumBlocksDoesNotChangeTheModel) {
  const auto data = dataset(13);
  const auto one = Als().set_rank(12).set_max_iter(3).set_num_blocks(1).fit(
      data.ratings);
  const auto four = Als().set_rank(12).set_max_iter(3).set_num_blocks(4).fit(
      data.ratings);
  EXPECT_EQ(one.user_factors(), four.user_factors());
  EXPECT_EQ(one.item_factors(), four.item_factors());
}

TEST(MllibAls, TransformAlignsWithPairs) {
  const auto data = dataset(17);
  const auto model =
      Als().set_rank(8).set_max_iter(3).fit(data.ratings);
  RatingsCoo pairs(data.ratings.rows(), data.ratings.cols());
  pairs.add(0, 1, 0.0f);
  pairs.add(5, 2, 0.0f);
  const auto predictions = model.transform(pairs);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0], model.predict(0, 1));
  EXPECT_EQ(predictions[1], model.predict(5, 2));
}

TEST(MllibAls, RecommendForAllUsersExcludesSeen) {
  const auto data = dataset(19);
  const auto model =
      Als().set_rank(12).set_max_iter(5).fit(data.ratings);
  const auto recs = model.recommend_for_all_users(5);
  ASSERT_EQ(recs.size(), data.ratings.rows());
  const auto seen = CsrMatrix::from_coo([&] {
    auto copy = data.ratings;
    copy.sort_and_dedup();
    return copy;
  }());
  for (index_t u = 0; u < 50; ++u) {  // spot-check the first 50 users
    EXPECT_LE(recs[u].size(), 5u);
    const auto rated = seen.row_cols(u);
    for (const ScoredItem& item : recs[u]) {
      EXPECT_FALSE(
          std::binary_search(rated.begin(), rated.end(), item.item))
          << "user " << u << " was recommended an already-rated item";
    }
  }
}

TEST(MllibAls, ImplicitPrefsTrainsPreferenceModel) {
  const auto data = dataset(23);
  // Keep strong interactions only, as implicit input strength.
  RatingsCoo interactions(data.ratings.rows(), data.ratings.cols());
  for (const Rating& e : data.ratings.entries()) {
    if (e.r >= 4.0f) {
      interactions.add(e.u, e.v, e.r - 3.0f);
    }
  }
  const auto model = Als()
                         .set_rank(12)
                         .set_reg_param(0.05)
                         .set_max_iter(6)
                         .set_implicit_prefs(true)
                         .set_alpha(20.0)
                         .fit(interactions);
  // Observed interactions outscore random pairs (preference learned).
  Rng rng(29);
  int wins = 0;
  int trials = 0;
  for (const Rating& e : interactions.entries()) {
    if (trials >= 1000) {
      break;
    }
    const auto rv =
        static_cast<index_t>(rng.uniform_index(interactions.cols()));
    wins += model.predict(e.u, e.v) > model.predict(e.u, rv);
    ++trials;
  }
  EXPECT_GT(static_cast<double>(wins) / trials, 0.75);
}

}  // namespace
}  // namespace cumf::mllib
