// cutune tests: the determinism contract (byte-identical configs across
// runs and tuner worker counts), the winner-vs-default guarantee, pruning
// monotonicity against exhaustive probing, and the full persistence
// rejection taxonomy (bad magic, version skew, truncation, CRC, malformed
// payload, fingerprint mismatch).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "tune/tune.hpp"

namespace cumf::tune {
namespace {

// ---------- shared fixtures ----------

/// ~1.5k synthetic ratings on a 120x60 grid, pre-split and canonical.
TuneInput make_input(std::size_t f) {
  Rng rng(77);
  std::vector<Rating> train_entries;
  std::vector<Rating> test_entries;
  for (int i = 0; i < 1600; ++i) {
    Rating r{static_cast<index_t>(rng.uniform_index(120)),
             static_cast<index_t>(rng.uniform_index(60)),
             static_cast<real_t>(rng.uniform(1.0, 5.0))};
    (i % 8 == 0 ? test_entries : train_entries).push_back(r);
  }
  TuneInput input;
  input.train = RatingsCoo(120, 60, std::move(train_entries));
  input.train.sort_and_dedup();
  input.test = RatingsCoo(120, 60, std::move(test_entries));
  input.test.sort_and_dedup();
  input.fingerprint.device = gpusim::DeviceSpec::maxwell_titan_x().name;
  input.fingerprint.rows = 120;
  input.fingerprint.cols = 60;
  input.fingerprint.nnz = 1600;
  input.fingerprint.f = static_cast<std::uint32_t>(f);
  input.fingerprint.lambda = 0.05f;
  return input;
}

/// A small-but-real search space: every knob axis is exercised, exhaustive
/// probing stays cheap enough for the monotonicity test.
TuneRequest make_request() {
  TuneRequest req;
  req.f = 16;
  req.probe_epochs = 1;
  req.finalists = 6;
  req.tile_grid = {8, 16};
  req.bin_grid = {16, 32};
  req.fs_grid = {2, 6};
  req.worker_grid = {1, 2};
  req.include_scalar_path = false;
  return req;
}

// ---------- enumeration + model ----------

TEST(TuneGrid, DefaultChoiceComesFirstAndPointsAreUnique) {
  const TuneRequest req = make_request();
  const std::vector<TuneChoice> grid = enumerate_grid(req);
  ASSERT_FALSE(grid.empty());
  // The baseline the winner must beat comes first, normalized for this f
  // (pick_tile collapses the default tile=10 to a divisor of f).
  TuneChoice def;
  def.tile = pick_tile(req.f, def.tile);
  EXPECT_EQ(grid.front(), def);
  std::set<std::string> seen;
  for (const TuneChoice& c : grid) {
    // Normalized key over every knob; enumerate_grid must dedup points that
    // pick_tile collapses.
    std::string key = std::to_string(c.tile) + "/" + std::to_string(c.bin) +
                      "/" + std::to_string(static_cast<int>(c.solver)) + "/" +
                      std::to_string(c.fs) + "/" +
                      std::to_string(static_cast<int>(c.schedule)) + "/" +
                      std::to_string(static_cast<int>(c.path)) + "/" +
                      std::to_string(c.workers) + "/" +
                      std::to_string(c.gpus) + "/" + c.link + "/" +
                      std::to_string(c.ooc_host_bytes);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate grid point " << key;
    EXPECT_EQ(static_cast<std::size_t>(req.f) %
                  static_cast<std::size_t>(c.tile),
              0u)
        << "tile " << c.tile << " does not divide f";
  }
  // Exact solvers requested -> LU and Cholesky candidates present.
  bool saw_lu = false;
  bool saw_chol = false;
  for (const TuneChoice& c : grid) {
    saw_lu |= c.solver == SolverKind::LuFp32;
    saw_chol |= c.solver == SolverKind::CholeskyFp32;
  }
  EXPECT_TRUE(saw_lu);
  EXPECT_TRUE(saw_chol);
}

TEST(TuneModel, OocBudgetBelowLargestTileIsInfeasible) {
  TuneRequest req = make_request();
  TileRange tile;
  tile.row_begin = 0;
  tile.row_end = 60;
  tile.nnz = 700;
  tile.bytes = 1 << 20;
  req.ooc_row_tiles = {tile};
  const TuneInput input = make_input(req.f);
  const auto csr = CsrMatrix::from_coo(input.train);

  TuneChoice starved;
  starved.ooc_host_bytes = 64;  // far below one resident tile
  const Candidate c = evaluate_model(req, csr, starved);
  EXPECT_FALSE(c.feasible);
  EXPECT_NE(c.infeasible_why.find("host budget"), std::string::npos);

  // On a shard store every choice needs a budget — in-core (0) is not an
  // option the tuner may pick, since the dataset doesn't fit by premise.
  const Candidate zero = evaluate_model(req, csr, TuneChoice{});
  EXPECT_FALSE(zero.feasible);

  // A comfortable budget is feasible and never models faster than the same
  // choice trained in-core (streaming can stall but cannot help).
  TuneChoice roomy;
  roomy.ooc_host_bytes = 8ull << 20;
  const Candidate ok = evaluate_model(req, csr, roomy);
  ASSERT_TRUE(ok.feasible);
  TuneRequest incore_req = make_request();  // same knobs, no shard tiles
  const Candidate incore = evaluate_model(incore_req, csr, TuneChoice{});
  ASSERT_TRUE(incore.feasible);
  EXPECT_GE(ok.model_epoch_s, incore.model_epoch_s);
}

// ---------- the search itself ----------

TEST(TuneSearch, WinnerNeverModelsSlowerThanDefault) {
  const TuneRequest req = make_request();
  const TuneInput input = make_input(req.f);
  const TunedConfig config = tune(req, input);
  EXPECT_GT(config.candidates, config.finalists);
  EXPECT_EQ(config.candidates, config.pruned + config.finalists);
  EXPECT_LE(config.model_epoch_s, config.default_epoch_s);
  EXPECT_GT(config.model_epoch_s, 0.0);
  EXPECT_FALSE(config.verdicts.empty());
  EXPECT_EQ(config.fingerprint, input.fingerprint);
}

TEST(TuneSearch, ByteIdenticalAcrossRunsAndWorkerCounts) {
  const TuneInput input = make_input(16);
  std::string first;
  for (int workers : {1, 1, 4}) {  // repeat run, then a parallel run
    TuneRequest req = make_request();
    req.workers = workers;
    const std::string bytes = serialize_tuned_config(tune(req, input));
    if (first.empty()) {
      first = bytes;
    } else {
      EXPECT_EQ(bytes, first) << "workers=" << workers
                              << " changed the serialized config";
    }
  }
}

TEST(TuneSearch, PruningNeverDiscardsAClearlyBetterVariant) {
  // Exhaustively probe every feasible grid point and compare against the
  // pruned search: the winner's counter-refined time must be within 10% of
  // the best any discarded variant would have achieved. (The model may
  // mis-rank near-ties; it must not bury a clear winner.)
  const TuneRequest req = make_request();
  const TuneInput input = make_input(req.f);
  const TunedConfig config = tune(req, input);

  const auto csr = CsrMatrix::from_coo(input.train);
  double best_refined = std::numeric_limits<double>::infinity();
  for (const TuneChoice& choice : enumerate_grid(req)) {
    Candidate c = evaluate_model(req, csr, choice);
    if (!c.feasible) {
      continue;
    }
    probe_candidate(req, input, csr, c);
    if (c.refined_epoch_s < best_refined) {
      best_refined = c.refined_epoch_s;
    }
  }
  ASSERT_TRUE(std::isfinite(best_refined));
  EXPECT_LE(config.model_epoch_s, best_refined * 1.10)
      << "the model prune discarded a variant that probes >10% faster";
}

// ---------- persistence ----------

TEST(TunePersist, RoundTripIsByteIdentical) {
  const TuneRequest req = make_request();
  const TunedConfig config = tune(req, make_input(req.f));
  const std::string bytes = serialize_tuned_config(config);
  const TunedConfig back = parse_tuned_config(bytes);
  EXPECT_EQ(back.fingerprint, config.fingerprint);
  EXPECT_EQ(back.choice, config.choice);
  EXPECT_EQ(back.candidates, config.candidates);
  EXPECT_EQ(back.pruned, config.pruned);
  EXPECT_EQ(back.finalists, config.finalists);
  // The payload prints doubles at 12 significant digits, so parsed values
  // match to that precision; byte-identity of the *re-serialized* form is
  // the real contract (asserted below).
  EXPECT_NEAR(back.model_epoch_s, config.model_epoch_s,
              config.model_epoch_s * 1e-9);
  EXPECT_NEAR(back.default_epoch_s, config.default_epoch_s,
              config.default_epoch_s * 1e-9);
  EXPECT_EQ(back.verdicts.size(), config.verdicts.size());
  EXPECT_EQ(serialize_tuned_config(back), bytes);
}

TuneReject reject_reason(const std::string& bytes) {
  try {
    (void)parse_tuned_config(bytes);
  } catch (const TuneError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "tampered config was accepted";
  return TuneReject::io;
}

TEST(TunePersist, RejectionTaxonomy) {
  const TuneRequest req = make_request();
  const std::string good = serialize_tuned_config(tune(req, make_input(16)));
  ASSERT_NO_THROW(parse_tuned_config(good));

  std::string bad = good;
  bad[0] = 'X';
  EXPECT_EQ(reject_reason(bad), TuneReject::bad_magic);

  bad = good;
  bad[8] = static_cast<char>(kTuneVersion + 1);  // version u32 LE at offset 8
  EXPECT_EQ(reject_reason(bad), TuneReject::version_skew);

  EXPECT_EQ(reject_reason(good.substr(0, 10)), TuneReject::truncated);
  EXPECT_EQ(reject_reason(good.substr(0, good.size() - 3)),
            TuneReject::truncated);

  bad = good;
  bad[40] ^= 0x5a;  // flip a payload byte; frame stays intact
  EXPECT_EQ(reject_reason(bad), TuneReject::bad_crc);

  // A frame whose CRC is valid but whose payload is not the expected JSON
  // must be rejected as malformed, for both non-JSON and wrong-shape JSON.
  const auto frame = [](const std::string& payload) {
    std::string out(kTuneMagic);
    const auto le = [&out](std::uint64_t v, int bytes) {
      for (int i = 0; i < bytes; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
      }
    };
    le(kTuneVersion, 4);
    le(payload.size(), 8);
    out += payload;
    le(crc32(payload), 4);
    return out;
  };
  EXPECT_EQ(reject_reason(frame("not json at all")), TuneReject::malformed);
  EXPECT_EQ(reject_reason(frame("{\"type\":\"wrong\"}")),
            TuneReject::malformed);
  EXPECT_EQ(reject_reason(frame("{}")), TuneReject::malformed);
}

TEST(TunePersist, FileRoundTripAndDirectoryLookup) {
  const TuneRequest req = make_request();
  const TuneInput input = make_input(req.f);
  const TunedConfig config = tune(req, input);

  const auto dir =
      std::filesystem::temp_directory_path() / "cumf_tune_test_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string file =
      (dir / tuned_config_filename(config.fingerprint)).string();
  write_tuned_config_file(file, config);

  // Load by explicit path and by directory; both validate the fingerprint.
  EXPECT_EQ(load_tuned_config(file, input.fingerprint).choice, config.choice);
  EXPECT_EQ(load_tuned_config(dir.string(), input.fingerprint).choice,
            config.choice);

  // Any fingerprint drift is a mismatch naming the differing field.
  TuneFingerprint other = input.fingerprint;
  other.f = 64;
  try {
    (void)load_tuned_config(file, other);
    FAIL() << "fingerprint mismatch was accepted";
  } catch (const TuneError& e) {
    EXPECT_EQ(e.reason(), TuneReject::mismatch);
    EXPECT_NE(std::string(e.what()).find("f"), std::string::npos);
  }

  // Missing file / empty directory -> io, naming the expected filename.
  try {
    (void)load_tuned_config((dir / "nope.bin").string(), input.fingerprint);
    FAIL() << "missing file was accepted";
  } catch (const TuneError& e) {
    EXPECT_EQ(e.reason(), TuneReject::io);
  }
  std::filesystem::remove_all(dir);
}

TEST(TunePersist, FilenameIsSanitizedAndKeyed) {
  TuneFingerprint fp;
  fp.device = "Maxwell Titan X";
  fp.rows = 120;
  fp.cols = 60;
  fp.nnz = 1600;
  fp.f = 16;
  EXPECT_EQ(tuned_config_filename(fp),
            "tune-maxwell-titan-x-120x60-1600-f16.bin");
}

}  // namespace
}  // namespace cumf::tune
