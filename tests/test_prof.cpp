// cuprof tests: tracer correctness under concurrency, export well-formedness
// (strict per-thread span nesting validated by parsing the JSON), counter
// registry merge algebra, and the disabled-tracer null path. The companion
// TU test_prof_off.cpp checks the CUMF_PROF_FORCE_OFF macro expansion; both
// link into this binary, which is the ODR-safety test for mixing
// instrumented and null TUs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "prof/counters.hpp"
#include "prof/prof.hpp"
#include "prof/telemetry.hpp"

namespace cumf::prof {
namespace {

/// Shared tracer state is global; serialize every test through a fresh,
/// disabled tracer.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
};

// --- Minimal trace-event scanner ----------------------------------------
// The exporter's output is machine-generated and stable, so a small string
// scanner (not a general JSON parser) suffices to recover the complete
// events and re-check the invariants a real consumer depends on.

struct ParsedSpan {
  std::string name;
  long tid = -1;
  double ts = 0.0;
  double dur = 0.0;
};

std::string extract_string(const std::string& obj, const std::string& key) {
  const auto at = obj.find("\"" + key + "\":\"");
  if (at == std::string::npos) {
    return {};
  }
  const auto start = at + key.size() + 4;
  const auto end = obj.find('"', start);
  return obj.substr(start, end - start);
}

double extract_number(const std::string& obj, const std::string& key) {
  const auto at = obj.find("\"" + key + "\":");
  if (at == std::string::npos) {
    return -1.0;
  }
  return std::strtod(obj.c_str() + at + key.size() + 3, nullptr);
}

/// Splits the traceEvents array into balanced {...} object strings.
std::vector<std::string> event_objects(const std::string& json) {
  std::vector<std::string> out;
  const auto array_at = json.find("\"traceEvents\":[");
  EXPECT_NE(array_at, std::string::npos);
  std::size_t i = array_at;
  int depth = 0;
  std::size_t start = 0;
  bool in_string = false;
  for (; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth++ == 0) {
        start = i;
      }
    } else if (c == '}') {
      if (--depth == 0) {
        out.push_back(json.substr(start, i - start + 1));
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

std::vector<ParsedSpan> parse_complete_spans(const std::string& json) {
  std::vector<ParsedSpan> spans;
  for (const auto& obj : event_objects(json)) {
    if (extract_string(obj, "ph") != "X") {
      continue;
    }
    ParsedSpan s;
    s.name = extract_string(obj, "name");
    s.tid = static_cast<long>(extract_number(obj, "tid"));
    s.ts = extract_number(obj, "ts");
    s.dur = extract_number(obj, "dur");
    spans.push_back(s);
  }
  return spans;
}

/// Checks the strict-nesting invariant: within one tid, any two spans
/// either nest or are disjoint.
void expect_strictly_nested(std::vector<ParsedSpan> spans) {
  std::map<long, std::vector<ParsedSpan>> by_tid;
  for (auto& s : spans) {
    EXPECT_GE(s.ts, 0.0);
    EXPECT_GE(s.dur, 0.0);
    by_tid[s.tid].push_back(s);
  }
  constexpr double kEps = 1e-6;
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.ts + a.dur > b.ts + b.dur;
    });
    std::vector<ParsedSpan> stack;
    for (const auto& s : list) {
      while (!stack.empty() &&
             s.ts >= stack.back().ts + stack.back().dur - kEps) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        EXPECT_LE(s.ts + s.dur, stack.back().ts + stack.back().dur + kEps)
            << "span '" << s.name << "' overlaps '" << stack.back().name
            << "' without nesting on tid " << tid;
      }
      stack.push_back(s);
    }
  }
}

// --- Tracer -------------------------------------------------------------

TEST_F(ProfTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  { ScopedSpan ghost("ghost"); }
  { CUMF_PROF_SCOPE("ghost_macro"); }
  CUMF_PROF_COUNTER("ghost_counter", 42.0);
  Tracer::instance().enable();
  const auto spans = parse_complete_spans(
      Tracer::instance().chrome_trace_json());
  Tracer::instance().disable();
  EXPECT_TRUE(spans.empty());
}

TEST_F(ProfTest, ScopedSpansNestAndCarryParents) {
  Tracer::instance().enable();
  {
    // ScopedSpan directly (not the macros) so this test is meaningful in
    // both CUMF_PROF=ON and =OFF configurations of the repo.
    ScopedSpan outer("outer", "test");
    { ScopedSpan inner("inner", "test"); }
    { ScopedSpan inner("inner", "test"); }
  }
  const auto json = Tracer::instance().chrome_trace_json();
  const auto spans = parse_complete_spans(json);
  ASSERT_EQ(spans.size(), 3u);
  expect_strictly_nested(spans);
  int inner = 0;
  for (const auto& s : spans) {
    inner += s.name == "inner" ? 1 : 0;
  }
  EXPECT_EQ(inner, 2);
}

TEST_F(ProfTest, ConcurrentPoolWorkersProduceWellFormedNestedTrace) {
  Tracer::instance().enable();
  constexpr int kWorkers = 4;
  constexpr std::size_t kTasks = 64;
  {
    ThreadPool pool(kWorkers);
    std::atomic<int> ran{0};
    for (std::size_t t = 0; t < kTasks; ++t) {
      pool.submit([&ran] {
        ScopedSpan work("work", "test");
        { ScopedSpan inner("work_inner", "test"); }
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), static_cast<int>(kTasks));
  }

  const auto json = Tracer::instance().chrome_trace_json();
  const auto spans = parse_complete_spans(json);
  // Every task contributes a pool-recorded "task" span wrapping the user's
  // "work"/"work_inner" pair.
  std::size_t work = 0;
  std::size_t inner = 0;
  std::size_t task = 0;
  for (const auto& s : spans) {
    work += s.name == "work" ? 1 : 0;
    inner += s.name == "work_inner" ? 1 : 0;
    task += s.name == "task" ? 1 : 0;
  }
  EXPECT_EQ(work, kTasks);
  EXPECT_EQ(inner, kTasks);
  EXPECT_EQ(task, kTasks);
  expect_strictly_nested(spans);

  // Worker threads were named by the observer.
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_NE(json.find("pool-worker-"), std::string::npos);
  }
}

TEST_F(ProfTest, RingOverflowDropsOldestAndCounts) {
  Tracer::instance().enable(/*ring_capacity=*/64);
  const std::size_t capacity = Tracer::instance().local().capacity();
  for (std::size_t i = 0; i < capacity + 17; ++i) {
    ScopedSpan spin("spin", "test");
  }
  EXPECT_EQ(Tracer::instance().total_dropped(), 17u);
  const auto spans = parse_complete_spans(
      Tracer::instance().chrome_trace_json());
  EXPECT_EQ(spans.size(), capacity);
}

TEST_F(ProfTest, SummaryAggregatesPerName) {
  Tracer::instance().enable();
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("repeated", "test");
  }
  { ScopedSpan span("single", "test"); }
  const auto stats = Tracer::instance().summarize();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t repeated = 0;
  for (const auto& s : stats) {
    if (s.name == "repeated") {
      repeated = s.count;
      EXPECT_GE(s.max_us, s.p50_us);
      EXPECT_GE(s.p95_us, s.p50_us);
    }
  }
  EXPECT_EQ(repeated, 5u);
}

TEST_F(ProfTest, CompleteSpanUsesCallerTimestamps) {
  Tracer::instance().enable();
  Tracer::instance().complete_span("manual", "test", 1000, 3500);
  const auto spans = parse_complete_spans(
      Tracer::instance().chrome_trace_json());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "manual");
  EXPECT_DOUBLE_EQ(spans[0].ts, 1.0);    // µs
  EXPECT_DOUBLE_EQ(spans[0].dur, 2.5);   // µs
}

#if defined(CUMF_PROF_ENABLED)
TEST_F(ProfTest, MacrosRecordWhenCompiledIn) {
  Tracer::instance().enable();
  { CUMF_PROF_SCOPE("macro_span", "test"); }
  CUMF_PROF_COUNTER("macro_counter", 7.0);
  const auto json = Tracer::instance().chrome_trace_json();
  EXPECT_NE(json.find("macro_span"), std::string::npos);
  EXPECT_NE(json.find("macro_counter"), std::string::npos);
}
#endif

// --- Counter registry ---------------------------------------------------

TEST(Histogram, BucketKeysAreDeterministic) {
  EXPECT_EQ(Histogram::bucket_key(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_key(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_key(6.0), 6u);
  EXPECT_EQ(Histogram::bucket_key(128.0), 128u);
  EXPECT_EQ(Histogram::bucket_key(129.0), 256u);
  EXPECT_EQ(Histogram::bucket_key(1000.0), 1024u);
}

TEST(Histogram, MergeSumsBucketwise) {
  Histogram a;
  Histogram b;
  a.observe(6);
  a.observe(6);
  b.observe(6);
  b.observe(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 23.0);
  EXPECT_EQ(a.buckets().at(6), 3u);
  EXPECT_EQ(a.buckets().at(5), 1u);
}

CounterRegistry shard(double add, double obs) {
  CounterRegistry r;
  r.add("flops", add);
  r.observe("cg_iters", obs);
  return r;
}

TEST(CounterRegistry, MergeIsAssociativeAndCommutative) {
  const auto a = shard(1.0, 4);
  const auto b = shard(2.0, 6);
  const auto c = shard(4.0, 6);

  // (a ⊕ b) ⊕ c
  CounterRegistry left = a;
  left.merge(b);
  left.merge(c);
  // a ⊕ (b ⊕ c)
  CounterRegistry bc = b;
  bc.merge(c);
  CounterRegistry right = a;
  right.merge(bc);
  // c ⊕ b ⊕ a (commuted)
  CounterRegistry commuted = c;
  commuted.merge(b);
  commuted.merge(a);

  EXPECT_EQ(left, right);
  EXPECT_EQ(left, commuted);
  EXPECT_DOUBLE_EQ(left.value("flops"), 7.0);
  ASSERT_NE(left.histogram("cg_iters"), nullptr);
  EXPECT_EQ(left.histogram("cg_iters")->count(), 3u);
}

TEST(CounterRegistry, ToJsonRendersCountersAndHistograms) {
  CounterRegistry r;
  r.add("bytes", 512);
  r.observe("iters", 6);
  r.observe("iters", 6);
  const auto json = r.to_json();
  EXPECT_NE(json.find("\"bytes\":512"), std::string::npos);
  EXPECT_NE(json.find("\"6\":2"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

// --- Telemetry JSON builder ---------------------------------------------

TEST(JsonObject, RendersTypesAndEscapes) {
  JsonObject o;
  o.set("str", "a\"b\\c");
  o.set("i", std::int64_t{-3});
  o.set("flag", true);
  o.set_null("missing");
  o.set_raw("nested", "{\"x\":1}");
  const auto s = o.str();
  EXPECT_NE(s.find("\"str\":\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(s.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(s.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(s.find("\"missing\":null"), std::string::npos);
  EXPECT_NE(s.find("\"nested\":{\"x\":1}"), std::string::npos);
}

TEST(JsonObject, NonFiniteDoublesBecomeNull) {
  JsonObject o;
  o.set("nan", std::nan(""));
  EXPECT_NE(o.str().find("\"nan\":null"), std::string::npos);
}

}  // namespace
}  // namespace cumf::prof
