// Tests for batched GEMM/solve, the AdaGrad learning-rate schedule, and the
// parallel-CCD++-on-GPU time model.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/als_plain.hpp"
#include "baselines/ccd.hpp"
#include "baselines/sgd_blocked.hpp"
#include "baselines/sgd_hogwild.hpp"
#include "common/rng.hpp"
#include "core/batched_solve.hpp"
#include "data/generator.hpp"
#include "linalg/batched.hpp"
#include "linalg/gemm.hpp"
#include "metrics/rmse.hpp"

namespace cumf {
namespace {

std::vector<real_t> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> v(n);
  for (auto& x : v) {
    x = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  return v;
}

// ---------- gemm_batched ----------

TEST(GemmBatched, MatchesPerMatrixGemm) {
  const std::size_t batch = 7;
  const std::size_t m = 4;
  const std::size_t n = 5;
  const std::size_t k = 3;
  const auto a = random_values(batch * m * k, 1);
  const auto b = random_values(batch * k * n, 2);
  std::vector<real_t> c(batch * m * n, 99.0f);
  gemm_batched(batch, m, n, k, a, b, c);
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<real_t> expected(m * n, 0.0f);
    gemm(m, n, k, 1.0f,
         std::span<const real_t>(a).subspan(i * m * k, m * k),
         std::span<const real_t>(b).subspan(i * k * n, k * n), 0.0f,
         expected);
    for (std::size_t j = 0; j < m * n; ++j) {
      EXPECT_EQ(c[i * m * n + j], expected[j]) << "batch " << i;
    }
  }
}

TEST(GemmBatched, PoolExecutionIsIdentical) {
  const std::size_t batch = 16;
  const std::size_t d = 6;
  const auto a = random_values(batch * d * d, 3);
  const auto b = random_values(batch * d * d, 4);
  std::vector<real_t> serial(batch * d * d, 0.0f);
  std::vector<real_t> parallel(batch * d * d, 0.0f);
  gemm_batched(batch, d, d, d, a, b, serial);
  ThreadPool pool(3);
  gemm_batched(batch, d, d, d, a, b, parallel, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(GemmBatched, ValidatesShapes) {
  std::vector<real_t> a(10), b(10), c(9);
  EXPECT_THROW(gemm_batched(2, 2, 2, 2, a, b, c), CheckError);
}

// ---------- solve_batched ----------

std::vector<real_t> spd_batch(std::size_t batch, std::size_t f,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> out(batch * f * f);
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<real_t> g(f * f);
    for (auto& v : g) {
      v = static_cast<real_t>(rng.normal(0.0, 1.0));
    }
    for (std::size_t r = 0; r < f; ++r) {
      for (std::size_t c = 0; c < f; ++c) {
        double acc = r == c ? 1.5 : 0.0;
        for (std::size_t k = 0; k < f; ++k) {
          acc += static_cast<double>(g[r * f + k]) *
                 static_cast<double>(g[c * f + k]);
        }
        out[i * f * f + r * f + c] = static_cast<real_t>(acc);
      }
    }
  }
  return out;
}

class SolveBatchedSweep : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolveBatchedSweep, SolvesEverySystem) {
  const std::size_t batch = 20;
  const std::size_t f = 12;
  const auto a = spd_batch(batch, f, 5);
  const auto b = random_values(batch * f, 6);
  std::vector<real_t> x(batch * f, 0.0f);
  SolverOptions options;
  options.kind = GetParam();
  options.cg_fs = 40;
  options.cg_eps = 1e-5f;
  const auto stats = solve_batched(batch, f, a, b, x, options);
  EXPECT_EQ(stats.systems, batch);
  EXPECT_EQ(stats.failures, 0u);
  for (std::size_t i = 0; i < batch; ++i) {
    double worst = 0;
    for (std::size_t r = 0; r < f; ++r) {
      double acc = 0;
      for (std::size_t c = 0; c < f; ++c) {
        acc += static_cast<double>(a[i * f * f + r * f + c]) *
               static_cast<double>(x[i * f + c]);
      }
      worst = std::max(worst, std::abs(acc - b[i * f + r]));
    }
    EXPECT_LT(worst, GetParam() == SolverKind::CgFp16 ? 0.3 : 1e-2)
        << "system " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolveBatchedSweep,
                         ::testing::Values(SolverKind::LuFp32,
                                           SolverKind::CholeskyFp32,
                                           SolverKind::CgFp32,
                                           SolverKind::CgFp16));

TEST(SolveBatched, PoolMatchesSerial) {
  const std::size_t batch = 24;
  const std::size_t f = 8;
  const auto a = spd_batch(batch, f, 7);
  const auto b = random_values(batch * f, 8);
  std::vector<real_t> serial(batch * f, 0.0f);
  std::vector<real_t> parallel(batch * f, 0.0f);
  SolverOptions options;
  options.kind = SolverKind::CholeskyFp32;
  const auto s1 = solve_batched(batch, f, a, b, serial, options);
  ThreadPool pool(3);
  const auto s2 = solve_batched(batch, f, a, b, parallel, options, &pool);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(s1.systems, s2.systems);
}

TEST(SolveBatched, CountsSingularFailures) {
  const std::size_t f = 2;
  std::vector<real_t> a{1, 1, 1, 1,   // singular
                        2, 0, 0, 2};  // fine
  std::vector<real_t> b{1, 1, 2, 4};
  std::vector<real_t> x(4, -7.0f);
  SolverOptions options;
  options.kind = SolverKind::LuFp32;
  const auto stats = solve_batched(2, f, a, b, x, options);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(x[0], -7.0f);  // failed system left untouched
  EXPECT_NEAR(x[2], 1.0f, 1e-5);
  EXPECT_NEAR(x[3], 2.0f, 1e-5);
}

// ---------- AdaGrad schedule ----------

TEST(AdaGrad, AccumulatorsGrowOnlyForTouchedRows) {
  SgdOptions options;
  options.f = 4;
  options.schedule = SgdSchedule::AdaGrad;
  auto model = make_sgd_model(3, 3, options, 3.0);
  ASSERT_EQ(model.x_gsq.size(), 3u);
  sgd_apply(model, Rating{1, 2, 4.0f}, options, 0.0f);
  EXPECT_EQ(model.x_gsq[0], 0.0f);
  EXPECT_GT(model.x_gsq[1], 0.0f);
  EXPECT_GT(model.theta_gsq[2], 0.0f);
  EXPECT_EQ(model.theta_gsq[0], 0.0f);
}

TEST(AdaGrad, StepsShrinkWithAccumulatedGradient) {
  SgdOptions options;
  options.f = 4;
  options.lr = 0.1f;
  options.schedule = SgdSchedule::AdaGrad;
  auto model = make_sgd_model(1, 1, options, 3.0);
  const Rating s{0, 0, 5.0f};
  real_t prev_delta = 1e9f;
  for (int i = 0; i < 5; ++i) {
    const real_t before = model.x(0, 0);
    sgd_apply(model, s, options, 0.0f);
    const real_t delta = std::abs(model.x(0, 0) - before);
    EXPECT_LT(delta, prev_delta * 1.5f) << "step " << i;  // roughly shrinking
    prev_delta = delta;
  }
  EXPECT_GT(model.x_gsq[0], 0.0f);
}

TEST(AdaGrad, ConvergesAtLeastAsWellAsFixedDecay) {
  SyntheticConfig cfg;
  cfg.m = 250;
  cfg.n = 120;
  cfg.nnz = 8000;
  cfg.seed = 11;
  const auto data = generate_synthetic(cfg);

  SgdOptions fixed;
  fixed.f = 12;
  fixed.lambda = 0.04f;
  fixed.lr = 0.02f;
  fixed.seed = 9;
  auto adaptive = fixed;
  adaptive.schedule = SgdSchedule::AdaGrad;
  adaptive.lr = 0.2f;  // AdaGrad tolerates a larger base rate

  HogwildSgd a(data.ratings, fixed);
  HogwildSgd b(data.ratings, adaptive);
  for (int e = 0; e < 20; ++e) {
    a.run_epoch();
    b.run_epoch();
  }
  const double r_fixed =
      rmse(data.ratings, a.user_factors(), a.item_factors());
  const double r_ada = rmse(data.ratings, b.user_factors(),
                            b.item_factors());
  // The adaptive schedule is the reason LIBMF converges in few passes:
  // here it clearly beats the fixed decay at the same epoch budget.
  EXPECT_LT(r_ada, r_fixed);
  EXPECT_LT(r_ada, 0.45);
}

TEST(AdaGrad, WorksUnderBlockedScheduling) {
  SyntheticConfig cfg;
  cfg.m = 200;
  cfg.n = 100;
  cfg.nnz = 6000;
  cfg.seed = 13;
  const auto data = generate_synthetic(cfg);
  SgdOptions options;
  options.f = 12;
  options.lambda = 0.04f;
  options.lr = 0.2f;
  options.schedule = SgdSchedule::AdaGrad;
  options.workers = 3;
  BlockedSgd sgd(data.ratings, options);
  for (int e = 0; e < 15; ++e) {
    sgd.run_epoch();
  }
  EXPECT_LT(rmse(data.ratings, sgd.user_factors(), sgd.item_factors()),
            0.7);
}

// ---------- CCD++ GPU model ----------

TEST(CcdGpuModel, SitsBetweenGpuAlsAndCumfAls) {
  // [20]'s claim: parallel CCD++ on GPU beats GPU-ALS [31]; cuMF-ALS (this
  // paper) beats both (§VI-B).
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const double m = 480189;
  const double n = 17770;
  const double nnz = 99e6;
  const double ccd = ccd_gpu_epoch_seconds(dev, nnz, 100);
  const auto cumf_cfg = cumfals_kernel_config(100, SolverKind::CgFp16);
  const double cumf = als_epoch_seconds(dev, m, n, nnz, cumf_cfg);
  auto plain_cfg = cumf_cfg;
  plain_cfg.solver = SolverKind::LuFp32;
  plain_cfg.load_scheme = LoadScheme::Coalesced;
  plain_cfg.register_tiling = false;
  const double plain = als_epoch_seconds(dev, m, n, nnz, plain_cfg);
  // Per-epoch CCD++ is the cheapest of the three (rank-1 sweeps), but it
  // "makes less progress per iteration" (§VI-B): with its typical ~3x epoch
  // multiplier, cuMF-ALS still wins overall while GPU-ALS [31] loses.
  EXPECT_LT(ccd, plain);
  EXPECT_LT(3.0 * ccd, plain);   // [20]: CCD++ GPU beats GPU-ALS overall
  EXPECT_GT(3.0 * ccd, cumf);    // cuMF-ALS remains the fastest
}

TEST(CcdGpuModel, ScalesLinearlyInFAndNnz) {
  const auto dev = gpusim::DeviceSpec::pascal_p100();
  const double base = ccd_gpu_epoch_seconds(dev, 1e8, 50);
  EXPECT_NEAR(ccd_gpu_epoch_seconds(dev, 2e8, 50), 2 * base, 1e-9);
  EXPECT_NEAR(ccd_gpu_epoch_seconds(dev, 1e8, 100), 2 * base, 1e-9);
  EXPECT_THROW(ccd_gpu_epoch_seconds(dev, 0, 50), CheckError);
}

}  // namespace
}  // namespace cumf
