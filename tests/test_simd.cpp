// Differential tests for the SIMD hot-path kernels (src/simd, src/half,
// linalg dense/CG, core hermitian).
//
// Contract under test (see src/simd/vec.hpp): elementwise kernels and the
// FP16 conversions are *bitwise* identical between the scalar and SIMD
// paths; reduction kernels (dot, gemv inside CG) accumulate in double on
// both paths and may differ only by lane reassociation of exactly-
// representable products, so they are compared with tight tolerances.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/hermitian.hpp"
#include "data/generator.hpp"
#include "half/half.hpp"
#include "half/half_simd.hpp"
#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "simd/vec.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf {
namespace {

std::vector<real_t> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> v(n);
  for (auto& x : v) {
    x = static_cast<real_t>(rng.normal());
  }
  return v;
}

// ---------- vec.hpp basics ----------

TEST(SimdVec, LoadStoreRoundTripsUnaligned) {
  alignas(64) float buf[17];
  for (int i = 0; i < 17; ++i) {
    buf[i] = static_cast<float>(i) * 0.5f;
  }
  // Deliberately misaligned source (buf+1 is 4-byte aligned only).
  const simd::vf8 v = simd::vf8::load(buf + 1);
  float out[8];
  v.store(out);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], buf[i + 1]);
    EXPECT_EQ(v.lane(i), buf[i + 1]);
  }
}

TEST(SimdVec, ArithmeticMatchesScalarLanewise) {
  const auto a = random_vec(8, 1);
  const auto b = random_vec(8, 2);
  const auto va = simd::vf8::load(a.data());
  const auto vb = simd::vf8::load(b.data());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ((va + vb).lane(i), a[i] + b[i]);
    EXPECT_EQ((va - vb).lane(i), a[i] - b[i]);
    EXPECT_EQ((va * vb).lane(i), a[i] * b[i]);
  }
  EXPECT_EQ(simd::vf8::broadcast(3.25f).lane(5), 3.25f);
  EXPECT_EQ(simd::vf8::zero().lane(7), 0.0f);
}

TEST(SimdVec, DoubleAccumulatorSumsExactProducts) {
  const auto a = random_vec(8, 3);
  const auto b = random_vec(8, 4);
  simd::vd4 acc = simd::vd4::zero();
  acc.mul_acc_lo(simd::vf8::load(a.data()), simd::vf8::load(b.data()));
  acc.mul_acc_hi(simd::vf8::load(a.data()), simd::vf8::load(b.data()));
  // Each float×float product widened to double is exact, so the hsum must
  // equal the sequential double sum up to reassociation — which for 8 exact
  // terms of similar magnitude is below 1 double ulp of the total here.
  double expect = 0.0;
  for (int i = 0; i < 8; ++i) {
    expect += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  EXPECT_NEAR(acc.hsum(), expect, std::abs(expect) * 1e-15 + 1e-300);
}

// ---------- FP16 conversions ----------

TEST(SimdHalf, UnpackMatchesScalarForEveryPattern) {
  // All 65536 half bit patterns, 8 at a time: the SIMD unpack must produce
  // bit-identical floats to half::to_float, including every NaN payload,
  // ±Inf, ±0 and all subnormals.
  for (std::uint32_t base = 0; base < 0x10000; base += 8) {
    std::uint16_t bits[8];
    half src[8];
    for (std::uint32_t i = 0; i < 8; ++i) {
      bits[i] = static_cast<std::uint16_t>(base + i);
      src[i] = half::from_bits(bits[i]);
    }
    float out[8];
    half_to_float8(src).store(out);
    for (std::uint32_t i = 0; i < 8; ++i) {
      const float ref = half::to_float(bits[i]);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                std::bit_cast<std::uint32_t>(ref))
          << "half bits 0x" << std::hex << bits[i];
    }
  }
}

TEST(SimdHalf, PackMatchesScalarOnRandomBitPatterns) {
  // Uniformly random float bit patterns cover normals, subnormals, ±Inf and
  // NaNs (payloads included) — the pack must agree with half::from_float
  // bit-for-bit on all of them.
  Rng rng(99);
  for (int batch = 0; batch < 20000 / 8; ++batch) {
    float src[8];
    for (int i = 0; i < 8; ++i) {
      src[i] = std::bit_cast<float>(
          static_cast<std::uint32_t>(rng.uniform_index(0x100000000ull)));
    }
    std::uint16_t out[8];
    float_to_half8(src, out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], half::from_float(src[i]))
          << "float bits 0x" << std::hex
          << std::bit_cast<std::uint32_t>(src[i]);
    }
  }
}

TEST(SimdHalf, PackMatchesScalarOnBoundaryValues) {
  const float cases[] = {
      0.0f, -0.0f, 1.0f, -1.0f,
      65504.0f,                       // largest finite half
      65519.996f,                     // just below the overflow threshold
      65520.0f,                       // rounds to +Inf
      0x1.0p-14f,                     // smallest normal half
      0x1.0p-24f,                     // smallest subnormal half
      0x1.0p-25f,                     // tie: rounds to zero (even)
      0x1.8p-25f,                     // above the tie: rounds to denorm_min
      0x1.0p-26f,                     // underflows to zero
      0x1.ffcp-15f,                   // largest subnormal neighborhood
      1.0009766f,                     // RNE tie on bit 13
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
  };
  float src[8];
  std::uint16_t out[8];
  for (const float c : cases) {
    for (int i = 0; i < 8; ++i) {
      src[i] = c;
    }
    float_to_half8(src, out);
    EXPECT_EQ(out[0], half::from_float(c))
        << "float bits 0x" << std::hex << std::bit_cast<std::uint32_t>(c);
  }
}

TEST(SimdHalf, BulkHelpersAgreeAcrossPathsIncludingOddTails) {
  for (const std::size_t n : {1ul, 7ul, 8ul, 9ul, 100ul, 333ul}) {
    const auto src = random_vec(n, 7 + n);
    std::vector<half> packed_scalar(n);
    std::vector<half> packed_simd(n);
    float_to_half_n(src.data(), packed_scalar.data(), n,
                    simd::KernelPath::scalar);
    float_to_half_n(src.data(), packed_simd.data(), n,
                    simd::KernelPath::simd);
    std::vector<real_t> staged_scalar(n);
    std::vector<real_t> staged_simd(n);
    round_through_half_n(src.data(), staged_scalar.data(), n,
                         simd::KernelPath::scalar);
    round_through_half_n(src.data(), staged_simd.data(), n,
                         simd::KernelPath::simd);
    std::vector<real_t> widened_scalar(n);
    std::vector<real_t> widened_simd(n);
    half_to_float_n(packed_scalar.data(), widened_scalar.data(), n,
                    simd::KernelPath::scalar);
    half_to_float_n(packed_scalar.data(), widened_simd.data(), n,
                    simd::KernelPath::simd);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(packed_scalar[i].bits(), packed_simd[i].bits());
      EXPECT_EQ(std::bit_cast<std::uint32_t>(staged_scalar[i]),
                std::bit_cast<std::uint32_t>(staged_simd[i]));
      EXPECT_EQ(std::bit_cast<std::uint32_t>(widened_scalar[i]),
                std::bit_cast<std::uint32_t>(widened_simd[i]));
    }
  }
}

// ---------- dense primitives ----------

TEST(SimdDense, DotAgreesAcrossPaths) {
  for (const std::size_t n : {1ul, 8ul, 15ul, 16ul, 100ul, 1023ul}) {
    const auto a = random_vec(n, 11 + n);
    const auto b = random_vec(n, 13 + n);
    const double ds = dot(a, b, simd::KernelPath::scalar);
    const double dv = dot(a, b, simd::KernelPath::simd);
    // Both paths sum exact double products; only association differs.
    EXPECT_NEAR(dv, ds, (std::abs(ds) + 1.0) * 1e-12);
  }
}

TEST(SimdDense, AxpyIsBitwiseIdenticalAcrossPaths) {
  for (const std::size_t n : {1ul, 8ul, 20ul, 100ul, 257ul}) {
    const auto x = random_vec(n, 17 + n);
    auto y_scalar = random_vec(n, 19 + n);
    auto y_simd = y_scalar;
    axpy(real_t{1.7f}, x, y_scalar, simd::KernelPath::scalar);
    axpy(real_t{1.7f}, x, y_simd, simd::KernelPath::simd);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(y_scalar[i]),
                std::bit_cast<std::uint32_t>(y_simd[i]));
    }
  }
}

TEST(SimdDense, SymvAgreesAcrossPaths) {
  for (const std::size_t n : {4ul, 8ul, 33ul, 100ul}) {
    auto a = random_vec(n * n, 23 + n);
    for (std::size_t i = 0; i < n; ++i) {  // symmetrize
      for (std::size_t j = 0; j < i; ++j) {
        a[j * n + i] = a[i * n + j];
      }
    }
    const auto x = random_vec(n, 29 + n);
    std::vector<real_t> y_scalar(n);
    std::vector<real_t> y_simd(n);
    symv(n, a, x, y_scalar, simd::KernelPath::scalar);
    symv(n, a, x, y_simd, simd::KernelPath::simd);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_simd[i], y_scalar[i],
                  (std::abs(y_scalar[i]) + 1.0f) * 1e-6f);
    }
  }
}

// ---------- get_hermitian_row ----------

/// Small ratings matrix with varied row lengths (including an empty row and
/// one longer than BIN, so multi-batch staging is exercised).
CsrMatrix hermitian_fixture(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  RatingsCoo coo(m, n);
  for (index_t u = 0; u < m; ++u) {
    const auto len = static_cast<index_t>(
        u == 0 ? 0 : (u == 1 ? 3 * 32 + 5 : rng.uniform_index(n / 2) + 1));
    for (index_t k = 0; k < len; ++k) {
      coo.add(u, static_cast<index_t>(rng.uniform_index(n)),
              static_cast<real_t>(rng.normal()));
    }
  }
  coo.sort_and_dedup();
  return CsrMatrix::from_coo(coo);
}

TEST(SimdHermitian, TiledKernelIsBitwiseIdenticalAcrossPaths) {
  struct Case {
    std::size_t f;
    int tile;
  };
  // Tile widths below, at, and above the 8-lane width, so both the vector
  // body and the scalar tail of the tile loop are exercised (tile=5 and
  // tile=10 have odd tails; tile=16 is two full vectors).
  const Case cases[] = {{8, 4}, {8, 8}, {16, 16}, {32, 8}, {100, 5},
                       {100, 10}, {100, 20}};
  const auto r = hermitian_fixture(12, 120, 31);
  for (const auto& c : cases) {
    Matrix theta(r.cols(), c.f);
    als_init_factors(theta, 3.6, 41);
    for (const bool fp16 : {false, true}) {
      HermitianParams params;
      params.tile = c.tile;
      params.fp16_staging = fp16;
      HermitianWorkspace ws_scalar;
      HermitianWorkspace ws_simd;
      std::vector<real_t> a_scalar(c.f * c.f);
      std::vector<real_t> a_simd(c.f * c.f);
      std::vector<real_t> b_scalar(c.f);
      std::vector<real_t> b_simd(c.f);
      for (index_t u = 0; u < r.rows(); ++u) {
        get_hermitian_row(r, theta, u, real_t{0.05f}, params, ws_scalar,
                          a_scalar, b_scalar, simd::KernelPath::scalar);
        get_hermitian_row(r, theta, u, real_t{0.05f}, params, ws_simd,
                          a_simd, b_simd, simd::KernelPath::simd);
        for (std::size_t i = 0; i < a_scalar.size(); ++i) {
          ASSERT_EQ(std::bit_cast<std::uint32_t>(a_scalar[i]),
                    std::bit_cast<std::uint32_t>(a_simd[i]))
              << "A mismatch at f=" << c.f << " tile=" << c.tile
              << " fp16=" << fp16 << " u=" << u << " i=" << i;
        }
        for (std::size_t i = 0; i < b_scalar.size(); ++i) {
          ASSERT_EQ(std::bit_cast<std::uint32_t>(b_scalar[i]),
                    std::bit_cast<std::uint32_t>(b_simd[i]))
              << "b mismatch at f=" << c.f << " tile=" << c.tile
              << " fp16=" << fp16 << " u=" << u << " i=" << i;
        }
      }
    }
  }
}

// ---------- CG solve ----------

std::vector<real_t> spd_system(std::size_t f, std::uint64_t seed) {
  const auto g = random_vec(f * f, seed);
  std::vector<real_t> a(f * f, real_t{0});
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < f; ++k) {
        acc += static_cast<double>(g[k * f + i]) * g[k * f + j];
      }
      a[i * f + j] = a[j * f + i] =
          static_cast<real_t>(acc / static_cast<double>(f));
    }
    a[i * f + i] += real_t{1};
  }
  return a;
}

TEST(SimdCg, SolutionsAgreeAcrossPathsFloatAndHalf) {
  for (const std::size_t f : {8ul, 16ul, 32ul, 100ul}) {
    const auto a = spd_system(f, 51 + f);
    const auto b = random_vec(f, 53 + f);
    std::vector<half> a_half(f * f);
    float_to_half_n(a.data(), a_half.data(), a.size(),
                    simd::KernelPath::scalar);
    for (const std::uint32_t fs : {3u, 6u}) {
      std::vector<real_t> x_scalar(f, real_t{0});
      std::vector<real_t> x_simd(f, real_t{0});
      const auto rs = cg_solve<float>(f, a, b, x_scalar, fs, real_t{0},
                                      simd::KernelPath::scalar);
      const auto rv = cg_solve<float>(f, a, b, x_simd, fs, real_t{0},
                                      simd::KernelPath::simd);
      EXPECT_EQ(rs.iterations, rv.iterations);
      for (std::size_t i = 0; i < f; ++i) {
        // The paths reassociate double-accumulated reductions; after fs
        // iterations the drift stays far below CG's own truncation error.
        EXPECT_NEAR(x_simd[i], x_scalar[i],
                    (std::abs(x_scalar[i]) + 1.0f) * 1e-5f);
      }
      std::vector<real_t> xh_scalar(f, real_t{0});
      std::vector<real_t> xh_simd(f, real_t{0});
      cg_solve<half>(f, std::span<const half>(a_half), b, xh_scalar, fs,
                     real_t{0}, simd::KernelPath::scalar);
      cg_solve<half>(f, std::span<const half>(a_half), b, xh_simd, fs,
                     real_t{0}, simd::KernelPath::simd);
      for (std::size_t i = 0; i < f; ++i) {
        EXPECT_NEAR(xh_simd[i], xh_scalar[i],
                    (std::abs(xh_scalar[i]) + 1.0f) * 1e-5f);
      }
    }
  }
}

// ---------- nnz-balanced scheduling ----------

TEST(NnzSchedule, BoundsBalanceSkewedRows) {
  // Row 0 holds half of all nnz; remaining rows are uniform.
  RatingsCoo coo(64, 600);
  Rng rng(71);
  for (index_t v = 0; v < 300; ++v) {
    coo.add(0, v, real_t{1});
  }
  for (index_t u = 1; u < 64; ++u) {
    for (int k = 0; k < 5; ++k) {
      coo.add(u, static_cast<index_t>(rng.uniform_index(600)), real_t{1});
    }
  }
  coo.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(coo);
  const auto bounds = nnz_balanced_bounds(csr, 8);

  ASSERT_GE(bounds.size(), 3u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), static_cast<std::size_t>(csr.rows()));
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);  // strictly ascending, no empties
  }
  // The heavy row must sit alone in its chunk: no boundary may lump it with
  // a meaningful share of the remaining rows.
  EXPECT_EQ(bounds[1], 1u);
  // Chunks after the heavy one each hold roughly total/8 nnz.
  const auto& ptr = csr.row_ptr();
  const double share =
      static_cast<double>(ptr[csr.rows()]) / 8.0;
  for (std::size_t i = 1; i + 1 < bounds.size(); ++i) {
    const auto chunk_nnz =
        static_cast<double>(ptr[bounds[i + 1]] - ptr[bounds[i]]);
    EXPECT_LE(chunk_nnz, 2.0 * share);
  }
}

TEST(NnzSchedule, GuidedAndStaticSchedulesProduceIdenticalFactors) {
  // Row updates are self-contained, so the schedule must not affect the
  // result at all — factors are bitwise equal between schedules and worker
  // counts.
  SyntheticConfig cfg;
  cfg.m = 150;
  cfg.n = 80;
  cfg.nnz = 3000;
  cfg.seed = 91;
  const auto data = generate_synthetic(cfg);

  AlsOptions base;
  base.f = 16;
  base.workers = 1;
  base.schedule = AlsSchedule::static_rows;

  AlsOptions guided = base;
  guided.workers = 4;
  guided.schedule = AlsSchedule::nnz_guided;

  AlsEngine serial(data.ratings, base);
  AlsEngine parallel(data.ratings, guided);
  for (int epoch = 0; epoch < 3; ++epoch) {
    serial.run_epoch();
    parallel.run_epoch();
  }
  const auto& xs = serial.user_factors();
  const auto& xp = parallel.user_factors();
  ASSERT_EQ(xs.rows(), xp.rows());
  for (std::size_t i = 0; i < xs.rows(); ++i) {
    for (std::size_t k = 0; k < xs.cols(); ++k) {
      ASSERT_EQ(xs(i, k), xp(i, k)) << "factor divergence at " << i;
    }
  }
}

}  // namespace
}  // namespace cumf
