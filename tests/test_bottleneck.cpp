// cuscope classifier tests: verdicts must be deterministic functions of
// hand-built synthetic counter sets (the ROADMAP's auto-tuner selects on
// them, so a flaky or clock-dependent verdict would poison policy).
#include <gtest/gtest.h>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "prof/bottleneck.hpp"

namespace cumf::prof {
namespace {

TEST(Bottleneck, DramBoundSyntheticClassifiesWithinOnePercent) {
  PhaseSample s;
  s.phase = kPhaseHermitian;
  s.wall_s = 1.0;
  s.t_dram = 0.86;
  s.t_compute = 0.20;
  s.t_l2 = 0.10;
  const Verdict v = classify(s);
  EXPECT_EQ(v.bound, Bound::dram);
  EXPECT_NEAR(v.pct_of_roof, 0.86, 0.86 * 0.01);
  EXPECT_NEAR(v.headroom, 0.14, 1e-12);
  EXPECT_DOUBLE_EQ(v.wall_s, 1.0);
}

TEST(Bottleneck, ComputeBoundSyntheticClassifiesWithinOnePercent) {
  PhaseSample s;
  s.phase = kPhaseSolve;
  s.wall_s = 0.5;
  s.t_compute = 0.45;
  s.t_dram = 0.10;
  const Verdict v = classify(s);
  EXPECT_EQ(v.bound, Bound::compute);
  EXPECT_NEAR(v.pct_of_roof, 0.90, 0.90 * 0.01);
}

TEST(Bottleneck, WallDefaultsToDominantComponent) {
  // wall_s == 0 means "derive from the roofs": the gpusim convention that
  // a kernel's seconds is the max of its lower bounds.
  PhaseSample s;
  s.t_latency = 0.3;
  s.t_dram = 0.1;
  const Verdict v = classify(s);
  EXPECT_EQ(v.bound, Bound::latency);
  EXPECT_DOUBLE_EQ(v.wall_s, 0.3);
  EXPECT_DOUBLE_EQ(v.pct_of_roof, 1.0);
  EXPECT_DOUBLE_EQ(v.headroom, 0.0);
}

TEST(Bottleneck, TieBreaksByDeclarationOrder) {
  // Equal components must not flip the verdict between runs: the first
  // roof in declaration order (compute, dram, l2, latency, comm, stall)
  // wins a tie.
  PhaseSample s;
  s.t_compute = 0.5;
  s.t_dram = 0.5;
  EXPECT_EQ(classify(s).bound, Bound::compute);
  s.t_compute = 0.0;
  s.t_l2 = 0.5;
  EXPECT_EQ(classify(s).bound, Bound::dram);
}

TEST(Bottleneck, CommBoundMultiGpuEpoch) {
  PhaseSample s;
  s.phase = kPhaseMgpuAllGather;
  s.wall_s = 1.0;
  s.t_compute = 0.3;
  s.t_comm = 0.65;
  const Verdict v = classify(s);
  EXPECT_EQ(v.bound, Bound::comm);
  EXPECT_NEAR(v.pct_of_roof, 0.65, 1e-12);
}

TEST(Bottleneck, StallBoundStreamEpoch) {
  PhaseSample s;
  s.phase = kPhaseOocStream;
  s.wall_s = 2.0;
  s.t_compute = 0.8;
  s.t_stall = 1.2;
  const Verdict v = classify(s);
  EXPECT_EQ(v.bound, Bound::stall);
  EXPECT_NEAR(v.pct_of_roof, 0.6, 1e-12);
  EXPECT_NEAR(v.headroom, 0.4, 1e-12);
}

TEST(Bottleneck, ArithmeticIntensityFromCounters) {
  PhaseSample s;
  s.wall_s = 1.0;
  s.t_dram = 1.0;
  s.flops = 100.0;
  s.bytes = 400.0;
  EXPECT_DOUBLE_EQ(classify(s).arithmetic_intensity, 0.25);
  s.bytes = 0.0;  // no traffic -> intensity 0, not a division by zero
  EXPECT_DOUBLE_EQ(classify(s).arithmetic_intensity, 0.0);
}

TEST(Bottleneck, PctOfRoofClampedWhenWallUndercutsModel) {
  // A measured wall smaller than the modeled lower bound would report
  // >100% of roof; the classifier clamps so pct stays a fraction.
  PhaseSample s;
  s.wall_s = 0.5;
  s.t_dram = 0.8;
  const Verdict v = classify(s);
  EXPECT_DOUBLE_EQ(v.pct_of_roof, 1.0);
  EXPECT_DOUBLE_EQ(v.headroom, 0.0);
}

TEST(Bottleneck, IdenticalCountersYieldIdenticalVerdicts) {
  PhaseSample s;
  s.phase = kPhaseSolve;
  s.wall_s = 0.123;
  s.t_compute = 0.07;
  s.t_dram = 0.11;
  s.flops = 1e9;
  s.bytes = 3e9;
  const Verdict a = classify(s);
  const Verdict b = classify(s);
  EXPECT_EQ(a.bound, b.bound);
  EXPECT_DOUBLE_EQ(a.pct_of_roof, b.pct_of_roof);
  EXPECT_DOUBLE_EQ(a.headroom, b.headroom);
  EXPECT_DOUBLE_EQ(a.arithmetic_intensity, b.arithmetic_intensity);
}

TEST(Bottleneck, AddKernelTimeAccumulatesComponentsAndWall) {
  gpusim::KernelTime a;
  a.seconds = 0.5;
  a.t_compute = 0.2;
  a.t_dram = 0.5;
  gpusim::KernelTime b;
  b.seconds = 0.3;
  b.t_compute = 0.3;
  b.t_l2 = 0.1;
  PhaseSample s;
  add_kernel_time(s, a);
  add_kernel_time(s, b);
  EXPECT_DOUBLE_EQ(s.wall_s, 0.8);
  EXPECT_DOUBLE_EQ(s.t_compute, 0.5);
  EXPECT_DOUBLE_EQ(s.t_dram, 0.5);
  EXPECT_DOUBLE_EQ(s.t_l2, 0.1);
}

TEST(Bottleneck, AgreesWithGpusimKernelBoundAttribution) {
  // End to end against the cost model: a kernel gpusim calls DRAM-bound
  // must classify as dram when its KernelTime is the only input.
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  gpusim::KernelProfile p;
  p.name = "streaming_copy";
  p.flops = 1e6;  // trivially few FLOPs
  p.dram_read_bytes = 1e9;
  p.dram_write_bytes = 1e9;
  p.warps_per_sm = 64;
  const auto t = gpusim::kernel_time(dev, p);
  ASSERT_STREQ(t.bound_by, "dram");
  PhaseSample s;
  s.phase = kPhaseHermitian;
  add_kernel_time(s, t);
  EXPECT_EQ(classify(s).bound, Bound::dram);
  EXPECT_NEAR(classify(s).pct_of_roof, 1.0, 0.01);
}

TEST(Bottleneck, BoundNamesRoundTrip) {
  for (Bound b : {Bound::compute, Bound::dram, Bound::l2, Bound::latency,
                  Bound::comm, Bound::stall}) {
    EXPECT_STRNE(to_string(b), "");
    EXPECT_STRNE(describe(b), "");
  }
  EXPECT_STREQ(to_string(Bound::dram), "dram");
  EXPECT_STREQ(to_string(Bound::stall), "stall");
}

TEST(Bottleneck, RooflineTableNamesPhaseAndVerdict) {
  PhaseSample s;
  s.phase = kPhaseHermitian;
  s.wall_s = 0.01;
  s.t_dram = 0.0086;
  s.flops = 41.0;
  s.bytes = 100.0;
  const Verdict v = classify(s);
  const std::string table =
      render_roofline_table(std::span<const Verdict>(&v, 1), "Test GPU");
  EXPECT_NE(table.find("Test GPU"), std::string::npos);
  EXPECT_NE(table.find("get_hermitian"), std::string::npos);
  EXPECT_NE(table.find("flop/B"), std::string::npos);
  EXPECT_NE(table.find("of dram roof"), std::string::npos);
  EXPECT_NE(table.find("bandwidth-bound (DRAM)"), std::string::npos);
  EXPECT_NE(table.find("86%"), std::string::npos);
}

}  // namespace
}  // namespace cumf::prof
