// Tests for the GPU architectural model: caches, occupancy (including the
// paper's worked example), access traces, cost model, interconnect, clock.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/interconnect.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/sim_clock.hpp"
#include "gpusim/trace.hpp"

namespace cumf::gpusim {
namespace {

// ---------- CacheLevel ----------

TEST(Cache, HitsOnRepeatedAccess) {
  CacheLevel cache({1024, 64, 2});
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictsOldestWay) {
  // 2-way, 64B lines, 2 sets (256B total). Addresses 0, 128, 256 all map to
  // set 0; the third insert evicts the least recently used (0).
  CacheLevel cache({256, 64, 2});
  cache.access(0);
  cache.access(128);
  EXPECT_TRUE(cache.access(0));    // refresh 0 → 128 becomes LRU
  cache.access(256);               // evicts 128
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(128));  // was evicted
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  CacheLevel cache({4096, 64, 4});
  // Stream 16 KB twice: nothing survives, every access misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 16384; addr += 64) {
      cache.access(addr);
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(Cache, WorkingSetWithinCacheAllHitsOnSecondPass) {
  CacheLevel cache({16384, 64, 4});
  for (std::uint64_t addr = 0; addr < 8192; addr += 64) {
    cache.access(addr);
  }
  const auto misses_first = cache.misses();
  for (std::uint64_t addr = 0; addr < 8192; addr += 64) {
    EXPECT_TRUE(cache.access(addr));
  }
  EXPECT_EQ(cache.misses(), misses_first);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(CacheLevel({0, 64, 2}), CheckError);
  EXPECT_THROW(CacheLevel({1000, 60, 2}), CheckError);  // non-pow2 line
  EXPECT_THROW(CacheLevel({64, 128, 2}), CheckError);   // below one set
}

TEST(Cache, FlushResetsState) {
  CacheLevel cache({1024, 64, 2});
  cache.access(0);
  cache.flush();
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_FALSE(cache.access(0));
}

// ---------- hierarchy ----------

TEST(Hierarchy, L2CatchesL1Evictions) {
  // Tiny L1 (2 lines), big L2: a working set of 4 lines thrashes L1 but
  // lives in L2 after the first pass.
  CacheHierarchy h({128, 64, 1}, {65536, 64, 8}, true);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 4 * 64; addr += 64) {
      h.access(addr);
    }
  }
  EXPECT_EQ(h.served_by(MemLevel::Dram), 4u);  // only compulsory misses
  EXPECT_GE(h.served_by(MemLevel::L2), 4u);
}

TEST(Hierarchy, DisabledL1SendsEverythingToL2) {
  CacheHierarchy h({16384, 64, 4}, {65536, 64, 8}, false);
  h.access(0);
  h.access(0);
  EXPECT_EQ(h.served_by(MemLevel::L1), 0u);
  EXPECT_EQ(h.served_by(MemLevel::L2), 1u);
  EXPECT_EQ(h.served_by(MemLevel::Dram), 1u);
}

// ---------- occupancy ----------

TEST(Occupancy, PaperWorkedExample) {
  // §III Observation 2: f=100 → 168 regs/thread, 64-thread blocks, 65536
  // regs/SM → 65536/(168·64) ≈ 6 blocks per SM.
  const auto dev = DeviceSpec::maxwell_titan_x();
  EXPECT_EQ(hermitian_regs_per_thread(100, 10), 168);
  EXPECT_EQ(hermitian_threads_per_block(100, 10), 64);
  KernelResources res{168, 64, 32 * 100 * 4};
  const auto occ = compute_occupancy(dev, res);
  EXPECT_EQ(occ.blocks_per_sm, 6);
  EXPECT_EQ(occ.limited_by, OccupancyLimit::Registers);
  // 6 blocks × 2 warps = 12 of 64 max warps → low occupancy.
  EXPECT_LT(occ.fraction, 0.25);
}

TEST(Occupancy, PaperWorkingSetFitsBetweenL1AndL2) {
  // §III: θ working set per SM = 100 × 32 × 6 blocks × 4 B = 75 KB,
  // between Maxwell's 48 KB L1 and its per-SM share of the 3 MB L2.
  const auto dev = DeviceSpec::maxwell_titan_x();
  const double working_set = 100.0 * 32.0 * 6.0 * 4.0;
  EXPECT_NEAR(working_set / 1024.0, 75.0, 1.0);
  EXPECT_GT(working_set, dev.l1_bytes);
  EXPECT_LT(working_set, static_cast<double>(dev.l2_bytes) / dev.sm_count +
                             dev.l1_bytes * 2.0);
}

TEST(Occupancy, SharedMemoryCanLimit) {
  auto dev = DeviceSpec::maxwell_titan_x();
  KernelResources res{32, 64, 48 * 1024};  // two blocks exhaust 96 KB smem
  const auto occ = compute_occupancy(dev, res);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limited_by, OccupancyLimit::SharedMemory);
}

TEST(Occupancy, BlockLimitCaps) {
  auto dev = DeviceSpec::maxwell_titan_x();
  KernelResources res{16, 32, 0};  // tiny blocks → hits max_blocks_per_sm
  const auto occ = compute_occupancy(dev, res);
  EXPECT_EQ(occ.blocks_per_sm, dev.max_blocks_per_sm);
}

TEST(Occupancy, RejectsNonWarpBlocks) {
  const auto dev = DeviceSpec::maxwell_titan_x();
  EXPECT_THROW(compute_occupancy(dev, KernelResources{32, 50, 0}),
               CheckError);
}

TEST(Occupancy, HermitianResourceHelpers) {
  EXPECT_EQ(hermitian_threads_per_block(80, 10), 64);   // 36 pairs → 2 warps
  EXPECT_EQ(hermitian_threads_per_block(100, 20), 32);  // 15 pairs → 1 warp
  EXPECT_EQ(hermitian_regs_per_thread(100, 20), 468);
  EXPECT_THROW(hermitian_regs_per_thread(100, 7), CheckError);
}

// ---------- trace ----------

std::vector<std::vector<index_t>> make_rows(int blocks, int degree,
                                            index_t n_cols,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<index_t>> rows(blocks);
  for (auto& row : rows) {
    row.resize(degree);
    for (auto& c : row) {
      c = static_cast<index_t>(rng.uniform_index(n_cols));
    }
  }
  return rows;
}

TEST(Trace, NonCoalescedHasFewerInstructionsButMoreLinesPerInstruction) {
  const auto dev = DeviceSpec::maxwell_titan_x();
  const auto rows = make_rows(6, 64, 2000, 1);
  TraceConfig coal;
  coal.coalesced = true;
  TraceConfig non = coal;
  non.coalesced = false;
  const auto s_coal = simulate_hermitian_load(dev, coal, rows);
  const auto s_non = simulate_hermitian_load(dev, non, rows);
  // Coalesced: ~1 line per instruction. Non-coalesced: many.
  const double lpi_coal = static_cast<double>(s_coal.line_accesses) /
                          static_cast<double>(s_coal.warp_instructions);
  const double lpi_non = static_cast<double>(s_non.line_accesses) /
                         static_cast<double>(s_non.warp_instructions);
  EXPECT_LT(lpi_coal, 2.5);
  EXPECT_GT(lpi_non, 8.0);
}

TEST(Trace, L1CachesNonCoalescedReuse) {
  const auto dev = DeviceSpec::maxwell_titan_x();
  const auto rows = make_rows(6, 64, 2000, 2);
  TraceConfig with_l1;
  with_l1.coalesced = false;
  with_l1.l1_enabled = true;
  TraceConfig no_l1 = with_l1;
  no_l1.l1_enabled = false;
  const auto s_l1 = simulate_hermitian_load(dev, with_l1, rows);
  const auto s_no = simulate_hermitian_load(dev, no_l1, rows);
  EXPECT_GT(s_l1.l1_hits, 0u);
  EXPECT_EQ(s_no.l1_hits, 0u);
  // Without L1 the reuse is still caught by L2 — DRAM traffic comparable.
  EXPECT_NEAR(static_cast<double>(s_no.dram_accesses),
              static_cast<double>(s_l1.dram_accesses),
              0.35 * static_cast<double>(s_l1.dram_accesses) + 16.0);
  // But all reuse traffic now round-trips through the L2: bypassing L1
  // costs L2 bandwidth, which is what slows nonCoal-noL1 in Fig. 4.
  EXPECT_GT(s_no.l2_hits, s_l1.l2_hits);
  EXPECT_GT(s_no.l2_bytes(dev.cache_line_bytes),
            1.5 * s_l1.l2_bytes(dev.cache_line_bytes));
}

TEST(Trace, StatsAreInternallyConsistent) {
  const auto dev = DeviceSpec::kepler_k40();
  const auto rows = make_rows(4, 40, 500, 3);
  TraceConfig config;
  config.coalesced = false;
  const auto s = simulate_hermitian_load(dev, config, rows);
  EXPECT_EQ(s.l1_hits + s.l2_hits + s.dram_accesses, s.line_accesses);
  EXPECT_EQ(s.inst_worst_l1 + s.inst_worst_l2 + s.inst_worst_dram,
            s.warp_instructions);
  EXPECT_EQ(s.rows_simulated, 4u);
}

// ---------- cost model ----------

TEST(CostModel, ComputeBoundKernel) {
  const auto dev = DeviceSpec::pascal_p100();
  KernelProfile p;
  p.name = "flops_only";
  p.flops = 1e12;
  p.compute_efficiency = 1.0;
  const auto t = kernel_time(dev, p);
  EXPECT_STREQ(t.bound_by, "compute");
  EXPECT_NEAR(t.seconds, 1e12 / dev.peak_flops, 1e-9);
}

TEST(CostModel, BandwidthBoundKernel) {
  const auto dev = DeviceSpec::pascal_p100();
  KernelProfile p;
  p.name = "stream";
  p.dram_read_bytes = 74e9;
  p.dram_efficiency = 1.0;
  const auto t = kernel_time(dev, p);
  EXPECT_STREQ(t.bound_by, "dram");
  EXPECT_NEAR(t.seconds, 0.1, 1e-6);
}

TEST(CostModel, LatencyBoundAtLowOccupancy) {
  const auto dev = DeviceSpec::maxwell_titan_x();
  KernelProfile p;
  p.name = "pointer_chase";
  p.dram_read_bytes = 1e6;  // trivial traffic
  p.stall_latency_s = 10.0;  // but enormous serialized latency
  p.warps_per_sm = 2;
  const auto t = kernel_time(dev, p);
  EXPECT_STREQ(t.bound_by, "latency");
  EXPECT_GT(t.seconds, t.t_dram);
}

TEST(CostModel, MemcpyBandwidthBelowPeak) {
  for (const auto& dev :
       {DeviceSpec::kepler_k40(), DeviceSpec::maxwell_titan_x(),
        DeviceSpec::pascal_p100()}) {
    EXPECT_LT(memcpy_bandwidth(dev), dev.dram_bw);
    EXPECT_GT(memcpy_bandwidth(dev), 0.5 * dev.dram_bw);
  }
}

TEST(CostModel, ApplyTraceScalesWithRows) {
  const auto dev = DeviceSpec::maxwell_titan_x();
  TraceStats stats;
  stats.rows_simulated = 10;
  stats.dram_accesses = 100;
  stats.l2_hits = 50;
  stats.inst_worst_dram = 100;
  KernelProfile p1;
  apply_trace(dev, stats, 10.0, p1);
  KernelProfile p2;
  apply_trace(dev, stats, 1000.0, p2);
  EXPECT_NEAR(p2.dram_read_bytes, 100.0 * p1.dram_read_bytes, 1e-6);
  EXPECT_NEAR(p2.stall_latency_s, 100.0 * p1.stall_latency_s, 1e-12);
}

TEST(CostModel, HostSgdEpochScalesInverselyWithMachines) {
  const auto one = HostSpec::libmf_40core();
  const double t1 = host_sgd_epoch_seconds(one, 1e8, 100);
  EXPECT_GT(t1, 0.0);
  auto two = one;
  two.machines = 2;
  EXPECT_LT(host_sgd_epoch_seconds(two, 1e8, 100), t1);
}

TEST(CostModel, NetworkTimeOnlyForClusters) {
  EXPECT_EQ(host_network_epoch_seconds(HostSpec::libmf_40core(), 1e5, 100),
            0.0);
  EXPECT_GT(host_network_epoch_seconds(HostSpec::nomad_cluster(32), 1e5, 100),
            0.0);
}

// ---------- interconnect ----------

TEST(Interconnect, NvlinkFasterThanPcie) {
  const double bytes = 1e9;
  EXPECT_LT(transfer_seconds(LinkSpec::nvlink(), bytes),
            transfer_seconds(LinkSpec::pcie3(), bytes));
}

TEST(Interconnect, AllGatherScalesWithGpuCount) {
  const auto link = LinkSpec::nvlink();
  EXPECT_EQ(allgather_seconds(link, 1, 1e9), 0.0);
  const double t2 = allgather_seconds(link, 2, 1e9);
  const double t4 = allgather_seconds(link, 4, 1e9);
  EXPECT_GT(t4, t2);
  EXPECT_NEAR(t4 / t2, 3.0, 0.01);  // (g−1) rounds
}

TEST(Interconnect, RejectsNegativeBytes) {
  EXPECT_THROW(transfer_seconds(LinkSpec::nvlink(), -1.0), CheckError);
}

TEST(Interconnect, PipelinedStreamOverlapsTransferWithCompute) {
  // wall = t0 + Σ max(c_i, t_{i+1}) + c_last. Equal stages of 1s transfer /
  // 2s compute: 1 + 2 + 2 + 2 = 7 instead of the serial 9.
  const std::vector<double> t{1.0, 1.0, 1.0};
  const std::vector<double> c{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(pipelined_stream_seconds(t, c), 7.0);

  // Transfer-bound: compute hides entirely behind the wire.
  const std::vector<double> t2{4.0, 4.0};
  const std::vector<double> c2{1.0, 1.0};
  EXPECT_DOUBLE_EQ(pipelined_stream_seconds(t2, c2), 4.0 + 4.0 + 1.0);

  // Single stage cannot overlap anything; empty stream is free.
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(pipelined_stream_seconds(one, one), 6.0);
  EXPECT_DOUBLE_EQ(pipelined_stream_seconds({}, {}), 0.0);
}

TEST(Interconnect, PipelinedStreamValidatesInput) {
  const std::vector<double> two{1.0, 1.0};
  const std::vector<double> three{1.0, 1.0, 1.0};
  EXPECT_THROW(pipelined_stream_seconds(two, three), CheckError);
  const std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(pipelined_stream_seconds(two, neg), CheckError);
}

// ---------- sim clock ----------

TEST(SimClock, AccumulatesPerKernel) {
  SimClock clock;
  clock.charge("solve", 1.5);
  clock.charge("solve", 0.5);
  clock.charge("hermitian", 2.0);
  EXPECT_DOUBLE_EQ(clock.of("solve"), 2.0);
  EXPECT_DOUBLE_EQ(clock.of("hermitian"), 2.0);
  EXPECT_DOUBLE_EQ(clock.of("missing"), 0.0);
  EXPECT_DOUBLE_EQ(clock.total(), 4.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.total(), 0.0);
}

TEST(SimClock, RejectsNegativeCharge) {
  SimClock clock;
  EXPECT_THROW(clock.charge("k", -1.0), CheckError);
}

// ---------- device presets ----------

TEST(Device, PresetsMatchTableIII) {
  const auto k = DeviceSpec::kepler_k40();
  const auto m = DeviceSpec::maxwell_titan_x();
  const auto p = DeviceSpec::pascal_p100();
  EXPECT_NEAR(k.peak_flops, 4e12, 1e10);
  EXPECT_NEAR(m.peak_flops, 7e12, 1e10);
  EXPECT_NEAR(p.peak_flops, 11e12, 1e10);
  EXPECT_NEAR(k.dram_bw, 288e9, 1e8);
  EXPECT_NEAR(m.dram_bw, 340e9, 1e8);
  EXPECT_NEAR(p.dram_bw, 740e9, 1e8);
  // Generations get strictly faster in both dimensions.
  EXPECT_LT(k.peak_flops, m.peak_flops);
  EXPECT_LT(m.peak_flops, p.peak_flops);
  EXPECT_LT(k.dram_bw, m.dram_bw);
  EXPECT_LT(m.dram_bw, p.dram_bw);
}


TEST(Device, VoltaPresetHasTensorCores) {
  const auto v = DeviceSpec::volta_v100();
  EXPECT_GT(v.tensor_flops, v.peak_flops);      // TC peak far above FP32
  EXPECT_GT(v.peak_flops, DeviceSpec::pascal_p100().peak_flops);
  EXPECT_GT(v.dram_bw, DeviceSpec::pascal_p100().dram_bw);
  EXPECT_EQ(DeviceSpec::kepler_k40().tensor_flops, 0.0);
}

TEST(CostModel, HostAlsEpochScalesWithF) {
  const auto host = HostSpec::libmf_40core();
  const double f50 = host_als_epoch_seconds(host, 1e8, 5e5, 2e4, 50);
  const double f100 = host_als_epoch_seconds(host, 1e8, 5e5, 2e4, 100);
  EXPECT_GT(f100, 3.5 * f50);  // Nz·f² term dominates → ~4x
}

TEST(Trace, EmptyRowsProduceNoInstructions) {
  const auto dev = DeviceSpec::maxwell_titan_x();
  std::vector<std::vector<index_t>> rows(3);  // all empty
  TraceConfig config;
  const auto stats = simulate_hermitian_load(dev, config, rows);
  EXPECT_EQ(stats.warp_instructions, 0u);
  EXPECT_EQ(stats.line_accesses, 0u);
  EXPECT_EQ(stats.rows_simulated, 3u);
}

}  // namespace
}  // namespace cumf::gpusim
