// Tests for the sparse-matrix substrate: COO, CSR/CSC, block partitioning,
// train/test splitting.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"
#include "sparse/split.hpp"

namespace cumf {
namespace {

RatingsCoo small_matrix() {
  RatingsCoo coo(4, 3);
  coo.add(2, 1, 5.0f);
  coo.add(0, 0, 1.0f);
  coo.add(0, 2, 2.0f);
  coo.add(3, 1, 4.0f);
  coo.add(1, 0, 3.0f);
  return coo;
}

RatingsCoo random_matrix(index_t m, index_t n, nnz_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  RatingsCoo coo(m, n);
  std::set<std::pair<index_t, index_t>> used;
  while (coo.nnz() < nnz) {
    const auto u = static_cast<index_t>(rng.uniform_index(m));
    const auto v = static_cast<index_t>(rng.uniform_index(n));
    if (used.insert({u, v}).second) {
      coo.add(u, v, static_cast<real_t>(rng.uniform(1.0, 5.0)));
    }
  }
  return coo;
}

// ---------- COO ----------

TEST(Coo, AddValidatesBounds) {
  RatingsCoo coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0f), CheckError);
  EXPECT_THROW(coo.add(0, 2, 1.0f), CheckError);
}

TEST(Coo, SortAndDedupMergesDuplicates) {
  RatingsCoo coo(3, 3);
  coo.add(1, 1, 2.0f);
  coo.add(0, 0, 1.0f);
  coo.add(1, 1, 3.0f);
  EXPECT_FALSE(coo.is_canonical());
  coo.sort_and_dedup();
  EXPECT_TRUE(coo.is_canonical());
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[1].r, 5.0f);  // 2 + 3 summed
}

TEST(Coo, MeanValue) {
  RatingsCoo empty(2, 2);
  EXPECT_EQ(empty.mean_value(), 0.0);
  auto coo = small_matrix();
  EXPECT_NEAR(coo.mean_value(), (1 + 2 + 3 + 4 + 5) / 5.0, 1e-12);
}

// ---------- CSR ----------

TEST(Csr, FromCooMatchesBruteForce) {
  auto coo = small_matrix();
  coo.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(coo);
  EXPECT_EQ(csr.rows(), 4u);
  EXPECT_EQ(csr.cols(), 3u);
  EXPECT_EQ(csr.nnz(), 5u);
  EXPECT_EQ(csr.row_nnz(0), 2u);
  EXPECT_EQ(csr.row_nnz(1), 1u);
  EXPECT_EQ(csr.row_nnz(2), 1u);
  EXPECT_EQ(csr.row_nnz(3), 1u);
  const auto cols0 = csr.row_cols(0);
  ASSERT_EQ(cols0.size(), 2u);
  EXPECT_EQ(cols0[0], 0u);
  EXPECT_EQ(cols0[1], 2u);
  EXPECT_EQ(csr.row_vals(0)[1], 2.0f);
}

TEST(Csr, HandlesEmptyRows) {
  RatingsCoo coo(5, 2);
  coo.add(4, 1, 1.0f);
  const auto csr = CsrMatrix::from_coo(coo);
  for (index_t u = 0; u < 4; ++u) {
    EXPECT_EQ(csr.row_nnz(u), 0u);
    EXPECT_TRUE(csr.row_cols(u).empty());
  }
  EXPECT_EQ(csr.row_nnz(4), 1u);
}

TEST(Csr, TransposeRoundTripPreservesEntries) {
  auto coo = random_matrix(30, 20, 150, 1);
  coo.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(coo);
  const auto back = csr.transposed().transposed();
  EXPECT_EQ(back.row_ptr(), csr.row_ptr());
  EXPECT_EQ(back.col_idx(), csr.col_idx());
  EXPECT_EQ(back.values(), csr.values());
}

TEST(Csr, TransposeSwapsCoordinates) {
  auto coo = random_matrix(10, 15, 40, 2);
  coo.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(coo);
  const auto t = csr.transposed();
  std::map<std::pair<index_t, index_t>, real_t> orig;
  for (index_t u = 0; u < csr.rows(); ++u) {
    const auto cols = csr.row_cols(u);
    const auto vals = csr.row_vals(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      orig[{u, cols[k]}] = vals[k];
    }
  }
  nnz_t seen = 0;
  for (index_t v = 0; v < t.rows(); ++v) {
    const auto rows = t.row_cols(v);
    const auto vals = t.row_vals(v);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const auto it = orig.find({rows[k], v});
      ASSERT_NE(it, orig.end());
      EXPECT_EQ(it->second, vals[k]);
      ++seen;
    }
  }
  EXPECT_EQ(seen, csr.nnz());
}

TEST(Csr, DegreeQueries) {
  auto coo = small_matrix();
  coo.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(coo);
  const auto deg = csr.row_degrees();
  EXPECT_EQ(deg, (std::vector<index_t>{2, 1, 1, 1}));
  EXPECT_EQ(csr.max_row_degree(), 2u);
}

TEST(Csr, ColumnsSortedWithinRows) {
  auto coo = random_matrix(25, 40, 300, 3);
  coo.sort_and_dedup();
  const auto csr = CsrMatrix::from_coo(coo);
  for (index_t u = 0; u < csr.rows(); ++u) {
    const auto cols = csr.row_cols(u);
    for (std::size_t k = 1; k < cols.size(); ++k) {
      EXPECT_LT(cols[k - 1], cols[k]);
    }
  }
}

// ---------- BlockGrid ----------

TEST(BlockGrid, EveryEntryLandsInExactlyOneBlock) {
  auto coo = random_matrix(40, 40, 400, 4);
  const BlockGrid grid(coo, 4, 4);
  EXPECT_EQ(grid.total_entries(), coo.nnz());
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      for (const Rating& e : grid.block(i, j)) {
        EXPECT_EQ(grid.row_block_of(e.u), i);
        EXPECT_EQ(grid.col_block_of(e.v), j);
      }
    }
  }
}

TEST(BlockGrid, DiagonalScheduleIsConflictFreeAndComplete) {
  auto coo = random_matrix(30, 30, 200, 5);
  const BlockGrid grid(coo, 5, 5);
  const auto schedule = grid.diagonal_schedule();
  ASSERT_EQ(schedule.size(), 5u);
  std::set<std::pair<index_t, index_t>> seen;
  for (const auto& round : schedule) {
    ASSERT_EQ(round.size(), 5u);
    std::set<index_t> round_rows;
    std::set<index_t> round_cols;
    for (const auto& b : round) {
      EXPECT_TRUE(round_rows.insert(b.i).second) << "row block reused";
      EXPECT_TRUE(round_cols.insert(b.j).second) << "col block reused";
      EXPECT_TRUE(seen.insert({b.i, b.j}).second) << "block scheduled twice";
    }
  }
  EXPECT_EQ(seen.size(), 25u);
}

TEST(BlockGrid, RejectsInvalidGrids) {
  auto coo = random_matrix(10, 10, 30, 6);
  EXPECT_THROW(BlockGrid(coo, 0, 2), CheckError);
  EXPECT_THROW(BlockGrid(coo, 11, 2), CheckError);
  const BlockGrid rect(coo, 2, 3);
  EXPECT_THROW(rect.diagonal_schedule(), CheckError);
}

TEST(BlockGrid, BlockRangesPartitionIndexSpace) {
  auto coo = random_matrix(17, 23, 100, 7);  // deliberately non-divisible
  const BlockGrid grid(coo, 5, 5);
  // Each index maps to exactly one block and mapping is monotone.
  for (index_t u = 1; u < 17; ++u) {
    EXPECT_GE(grid.row_block_of(u), grid.row_block_of(u - 1));
  }
  for (index_t v = 1; v < 23; ++v) {
    EXPECT_GE(grid.col_block_of(v), grid.col_block_of(v - 1));
  }
  EXPECT_EQ(grid.row_block_of(0), 0u);
  EXPECT_EQ(grid.row_block_of(16), 4u);
}

// ---------- split ----------

TEST(Split, FractionRoughlyRespected) {
  auto coo = random_matrix(60, 50, 1500, 8);
  Rng rng(9);
  const auto split = split_holdout(coo, 0.2, rng);
  EXPECT_EQ(split.train.nnz() + split.test.nnz(), coo.nnz());
  const double frac =
      static_cast<double>(split.test.nnz()) / static_cast<double>(coo.nnz());
  EXPECT_NEAR(frac, 0.2, 0.05);
}

TEST(Split, EveryRowAndColumnKeepsATrainingEntry) {
  auto coo = random_matrix(40, 30, 400, 10);
  Rng rng(11);
  const auto split = split_holdout(coo, 0.5, rng);
  std::vector<int> row_train(40, 0);
  std::vector<int> col_train(30, 0);
  for (const Rating& e : split.train.entries()) {
    ++row_train[e.u];
    ++col_train[e.v];
  }
  std::set<index_t> rows_with_data;
  std::set<index_t> cols_with_data;
  for (const Rating& e : coo.entries()) {
    rows_with_data.insert(e.u);
    cols_with_data.insert(e.v);
  }
  for (const index_t u : rows_with_data) {
    EXPECT_GT(row_train[u], 0) << "row " << u << " lost all training data";
  }
  for (const index_t v : cols_with_data) {
    EXPECT_GT(col_train[v], 0) << "col " << v << " lost all training data";
  }
}

TEST(Split, ZeroFractionKeepsEverything) {
  auto coo = random_matrix(10, 10, 50, 12);
  Rng rng(13);
  const auto split = split_holdout(coo, 0.0, rng);
  EXPECT_EQ(split.train.nnz(), coo.nnz());
  EXPECT_EQ(split.test.nnz(), 0u);
}

TEST(Split, RejectsInvalidFraction) {
  auto coo = random_matrix(5, 5, 10, 14);
  Rng rng(15);
  EXPECT_THROW(split_holdout(coo, 1.0, rng), CheckError);
  EXPECT_THROW(split_holdout(coo, -0.1, rng), CheckError);
}


TEST(Csr, EmptyMatrixIsValid) {
  const auto csr = CsrMatrix::from_coo(RatingsCoo(5, 4));
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_EQ(csr.max_row_degree(), 0u);
  const auto t = csr.transposed();
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(BlockGrid, SingleBlockHoldsEverything) {
  auto coo = random_matrix(10, 10, 40, 99);
  const BlockGrid grid(coo, 1, 1);
  EXPECT_EQ(grid.block(0, 0).size(), 40u);
  const auto schedule = grid.diagonal_schedule();
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule[0].size(), 1u);
}

}  // namespace
}  // namespace cumf
