// End-to-end integration tests: full pipelines (generate → split → train →
// evaluate) and cross-module assertions that mirror the paper's headline
// claims at reduced scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/als_plain.hpp"
#include "baselines/gpu_sgd.hpp"
#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/implicit_als.hpp"
#include "core/kernel_stats.hpp"
#include "data/implicit.hpp"
#include "data/io.hpp"
#include "data/presets.hpp"
#include "gpusim/sim_clock.hpp"
#include "metrics/convergence.hpp"
#include "metrics/rmse.hpp"
#include "sparse/split.hpp"

namespace cumf {
namespace {

/// A preset scaled far down so integration tests stay fast. The row degree
/// (~30) is kept high enough that ALS can approach the noise floor; the
/// scaled analogue of the paper's "acceptable RMSE" is floor × 1.22 (the
/// plateau all solvers reach, mirroring how 0.92 relates to the best
/// published Netflix RMSE).
DatasetPreset test_preset() {
  auto preset = DatasetPreset::netflix();
  preset.scaled.m = 2500;
  preset.scaled.n = 100;
  preset.scaled.nnz = 75'000;
  preset.scaled.seed = 101;
  return preset;
}

constexpr double kScaledTargetFactor = 1.25;

TEST(Integration, FullPipelineReachesScaledAcceptableRmse) {
  // generate → hold out 10% → train cuMF-ALS (CG-FP32, fs=6) → the
  // scaled analogue of Table IV's "converges to acceptable RMSE".
  const auto preset = test_preset();
  const auto data = generate(preset);
  Rng rng(7);
  const auto split = split_holdout(data.ratings, 0.1, rng);

  AlsOptions options;
  options.f = 16;
  options.lambda = static_cast<real_t>(preset.paper_lambda);
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  AlsEngine als(split.train, options);

  const double target = data.noise_floor_rmse * kScaledTargetFactor;
  ConvergenceTracker tracker;
  for (int epoch = 1; epoch <= 15; ++epoch) {
    als.run_epoch();
    tracker.record(epoch, rmse(split.test, als.user_factors(),
                               als.item_factors()),
                   epoch);
  }
  ASSERT_TRUE(tracker.time_to(target).has_value())
      << "best RMSE " << tracker.best_rmse() << " vs target " << target;
  // ALS converges in few epochs (paper: ~10 on Netflix).
  EXPECT_LE(*tracker.epochs_to(target), 12);
}

TEST(Integration, ApproximateSolverDoesNotHurtConvergence) {
  // Fig. 1 / §IV headline: same accuracy, fewer FLOPs. Train three engines
  // identically except for the solver and compare where they end up.
  const auto data = generate(test_preset());
  Rng rng(11);
  const auto split = split_holdout(data.ratings, 0.1, rng);

  const auto final_rmse = [&](SolverKind kind) {
    AlsOptions options;
    options.f = 16;
    options.lambda = 0.05f;
    options.solver.kind = kind;
    options.solver.cg_fs = 6;
    AlsEngine als(split.train, options);
    for (int epoch = 0; epoch < 12; ++epoch) {
      als.run_epoch();
    }
    return rmse(split.test, als.user_factors(), als.item_factors());
  };

  const double lu = final_rmse(SolverKind::LuFp32);
  const double chol = final_rmse(SolverKind::CholeskyFp32);
  const double cg = final_rmse(SolverKind::CgFp32);
  const double cg16 = final_rmse(SolverKind::CgFp16);
  EXPECT_NEAR(chol, lu, 0.01 * lu);
  EXPECT_NEAR(cg, lu, 0.02 * lu);
  EXPECT_NEAR(cg16, lu, 0.04 * lu);
}

TEST(Integration, SimulatedConvergenceOrderingMatchesTableIV) {
  // Epochs come from real training; per-epoch seconds from the cost model
  // at the paper's full Netflix scale. The resulting time-to-target must
  // reproduce Table IV's ordering:
  //   cuMF-ALS@P < cuMF-ALS@M < GPU-ALS@M, and cuMF-ALS@M < LIBMF.
  const auto preset = test_preset();
  const auto data = generate(preset);
  Rng rng(13);
  const auto split = split_holdout(data.ratings, 0.1, rng);
  const double target = data.noise_floor_rmse * kScaledTargetFactor;

  const auto epochs_to_target = [&](const AlsOptions& options) {
    AlsEngine als(split.train, options);
    for (int epoch = 1; epoch <= 25; ++epoch) {
      als.run_epoch();
      if (rmse(split.test, als.user_factors(), als.item_factors()) <=
          target) {
        return epoch;
      }
    }
    return 25;
  };

  AlsOptions cumf_options;
  cumf_options.f = 16;
  cumf_options.solver.kind = SolverKind::CgFp32;
  cumf_options.solver.cg_fs = 6;
  const int cumf_epochs = epochs_to_target(cumf_options);

  AlsOptions plain_options = cumf_options;
  plain_options.solver.kind = SolverKind::LuFp32;
  plain_options.tiled_hermitian = false;
  const int plain_epochs = epochs_to_target(plain_options);
  ASSERT_LT(cumf_epochs, 25) << "cuMF-ALS never reached the scaled target";
  ASSERT_LT(plain_epochs, 25) << "GPU-ALS never reached the scaled target";

  // Full-scale Netflix per-epoch times.
  const double m = 480189;
  const double n = 17770;
  const double nnz = 99e6;
  const auto maxwell = gpusim::DeviceSpec::maxwell_titan_x();
  const auto pascal = gpusim::DeviceSpec::pascal_p100();
  const auto cumf_cfg = cumfals_kernel_config(100, SolverKind::CgFp32);
  auto plain_cfg = cumf_cfg;
  plain_cfg.solver = SolverKind::LuFp32;
  plain_cfg.load_scheme = LoadScheme::Coalesced;
  plain_cfg.register_tiling = false;

  const double t_cumf_m =
      cumf_epochs * als_epoch_seconds(maxwell, m, n, nnz, cumf_cfg);
  const double t_cumf_p =
      cumf_epochs * als_epoch_seconds(pascal, m, n, nnz, cumf_cfg);
  const double t_plain_m =
      plain_epochs * als_epoch_seconds(maxwell, m, n, nnz, plain_cfg);

  EXPECT_LT(t_cumf_p, t_cumf_m);
  EXPECT_LT(t_cumf_m, t_plain_m);
  EXPECT_GT(t_plain_m / t_cumf_m, 2.0);  // the 2x-4x headline
  EXPECT_LT(t_plain_m / t_cumf_m, 6.0);

  // LIBMF (40-core host model) needs SGD epochs: use the host model with a
  // typical 30-epoch SGD budget; cuMF-ALS must win by a large margin.
  const double libmf_epoch = gpusim::host_sgd_epoch_seconds(
      gpusim::HostSpec::libmf_40core(), nnz, 100);
  const double t_libmf = 30 * libmf_epoch;
  EXPECT_GT(t_libmf / t_cumf_p, 3.0);
}

TEST(Integration, ImplicitPipelineRecommendsPlantedPreferences) {
  // Explicit ratings → implicit conversion → implicit ALS → the items a
  // user interacted with must outscore random items (the §V-F use case).
  auto preset = test_preset();
  preset.scaled.m = 300;
  preset.scaled.n = 120;
  preset.scaled.nnz = 6000;
  const auto data = generate(preset);
  const auto implicit = to_implicit(data.ratings, 3.5f, 20.0);

  ImplicitAlsOptions options;
  options.f = 12;
  options.lambda = 0.05f;
  ImplicitAlsEngine engine(implicit, options);
  for (int epoch = 0; epoch < 6; ++epoch) {
    engine.run_epoch();
  }

  Rng rng(17);
  int wins = 0;
  int trials = 0;
  for (const Rating& e : implicit.interactions.entries()) {
    if (trials >= 500) {
      break;
    }
    const auto rv = static_cast<index_t>(
        rng.uniform_index(implicit.interactions.cols()));
    wins += engine.score(e.u, e.v) > engine.score(e.u, rv);
    ++trials;
  }
  // AUC-style check: observed items beat random items most of the time.
  EXPECT_GT(static_cast<double>(wins) / trials, 0.75);
}

TEST(Integration, SaveTrainLoadRoundTrip) {
  // Dataset written to disk, read back, trained — the example-program path.
  auto preset = test_preset();
  preset.scaled.m = 200;
  preset.scaled.n = 80;
  preset.scaled.nnz = 4000;
  const auto data = generate(preset);
  const std::string path = "/tmp/cumf_integration_ratings.txt";
  write_ratings_file(path, data.ratings);
  const auto loaded = read_ratings_file(path);

  AlsOptions options;
  options.f = 8;
  AlsEngine als(loaded, options);
  for (int epoch = 0; epoch < 4; ++epoch) {
    als.run_epoch();
  }
  EXPECT_LT(rmse(loaded, als.user_factors(), als.item_factors()),
            1.5 * data.noise_floor_rmse);
  std::remove(path.c_str());
}

TEST(Integration, SimClockAccumulatesEpochBreakdown) {
  // The bench loop: charge modelled phase times per epoch into a SimClock
  // and read back the Fig. 5-style breakdown.
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  UpdateShape x_shape{480189, 17770, 99e6};
  UpdateShape t_shape{17770, 480189, 99e6};
  const auto config = cumfals_kernel_config(100, SolverKind::CgFp32);

  gpusim::SimClock clock;
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (const auto& shape : {x_shape, t_shape}) {
      const auto t = update_phase_times(dev, shape, config);
      clock.charge("get_hermitian", t.hermitian_seconds());
      clock.charge("solve", t.solve.seconds);
    }
  }
  EXPECT_GT(clock.of("get_hermitian"), 0.0);
  EXPECT_GT(clock.of("solve"), 0.0);
  EXPECT_NEAR(clock.total(),
              clock.of("get_hermitian") + clock.of("solve"), 1e-9);
}

TEST(Integration, AlsVsSgdCrossoverOnGpu) {
  // Fig. 8: SGD's epochs are cheaper but ALS needs far fewer of them.
  // Epoch counts are measured as "epochs until within 1% of the algorithm's
  // own plateau" — a scale-free notion of convergence speed (at toy scale
  // the two plateaus differ slightly because the regularizers differ).
  const auto preset = test_preset();
  const auto data = generate(preset);
  Rng rng(19);
  const auto split = split_holdout(data.ratings, 0.1, rng);

  const auto epochs_to_own_plateau = [&](auto& engine, int max_epochs) {
    std::vector<double> curve;
    for (int epoch = 0; epoch < max_epochs; ++epoch) {
      engine.run_epoch();
      curve.push_back(
          rmse(split.test, engine.user_factors(), engine.item_factors()));
    }
    const double best = *std::min_element(curve.begin(), curve.end());
    for (int epoch = 0; epoch < max_epochs; ++epoch) {
      if (curve[static_cast<std::size_t>(epoch)] <= best * 1.01) {
        return epoch + 1;
      }
    }
    return max_epochs;
  };

  AlsOptions als_options;
  als_options.f = 16;
  als_options.solver.kind = SolverKind::CgFp32;
  AlsEngine als(split.train, als_options);
  const int als_epochs = epochs_to_own_plateau(als, 15);

  GpuSgd::Options sgd_options;
  sgd_options.f = 16;
  sgd_options.lambda = 0.04f;
  sgd_options.lr = 0.02f;
  sgd_options.seed = 21;
  GpuSgd sgd(split.train, sgd_options);
  const int sgd_epochs = epochs_to_own_plateau(sgd, 40);

  EXPECT_LT(als_epochs, sgd_epochs);  // ALS: fewer epochs…
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const double sgd_epoch_t = sgd.epoch_seconds(dev);
  const auto config = cumfals_kernel_config(100, SolverKind::CgFp32);
  const double als_epoch_t =
      als_epoch_seconds(dev, 480189, 17770, 99e6, config);
  EXPECT_GT(als_epoch_t, sgd_epoch_t);  // …each more expensive (at scale)
}

}  // namespace
}  // namespace cumf
