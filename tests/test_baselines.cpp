// Tests for the comparison algorithms: Hogwild / blocked / NOMAD SGD, the
// GPU-SGD model, CCD++, GPU-ALS and BIDMach configurations, implicit-CPU.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/als_plain.hpp"
#include "baselines/bidmach_als.hpp"
#include "baselines/ccd.hpp"
#include "baselines/gpu_sgd.hpp"
#include "baselines/implicit_cpu.hpp"
#include "baselines/sgd_blocked.hpp"
#include "baselines/sgd_hogwild.hpp"
#include "baselines/sgd_nomad.hpp"
#include "common/rng.hpp"
#include "data/generator.hpp"
#include "metrics/rmse.hpp"
#include "sparse/split.hpp"

namespace cumf {
namespace {

SyntheticDataset sgd_dataset(std::uint64_t seed = 3) {
  SyntheticConfig cfg;
  cfg.m = 250;
  cfg.n = 120;
  cfg.nnz = 8000;
  cfg.true_rank = 4;
  cfg.mean = 3.5;
  cfg.signal_std = 0.7;
  cfg.noise_std = 0.3;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

SgdOptions sgd_options(int workers = 1) {
  SgdOptions options;
  options.f = 12;
  options.lambda = 0.04f;
  options.lr = 0.02f;
  options.lr_decay = 0.1f;
  options.workers = workers;
  options.seed = 9;
  return options;
}

/// Train RMSE after `epochs`; the convergence smoke test for every variant.
template <typename Engine>
double train_engine(Engine& engine, const RatingsCoo& data, int epochs) {
  for (int e = 0; e < epochs; ++e) {
    engine.run_epoch();
  }
  return rmse(data, engine.user_factors(), engine.item_factors());
}

double baseline_rmse(const RatingsCoo& data) {
  // Predicting the mean: the bar every learner must clear decisively.
  const double mean = data.mean_value();
  double sq = 0;
  for (const Rating& e : data.entries()) {
    sq += (e.r - mean) * (e.r - mean);
  }
  return std::sqrt(sq / static_cast<double>(data.nnz()));
}

// ---------- Hogwild ----------

TEST(Hogwild, SerialConvergesBelowMeanPredictor) {
  const auto data = sgd_dataset();
  HogwildSgd sgd(data.ratings, sgd_options(1));
  const double r = train_engine(sgd, data.ratings, 30);
  EXPECT_LT(r, 0.75 * baseline_rmse(data.ratings));
  EXPECT_EQ(sgd.epochs_run(), 30);
}

TEST(Hogwild, RacingWorkersStillConverge) {
  const auto data = sgd_dataset(5);
  HogwildSgd sgd(data.ratings, sgd_options(4));
  const double r = train_engine(sgd, data.ratings, 30);
  EXPECT_LT(r, 0.75 * baseline_rmse(data.ratings));
}

// ---------- Blocked (LIBMF/DSGD) ----------

TEST(BlockedSgd, ConvergesWithMultipleWorkers) {
  const auto data = sgd_dataset(7);
  BlockedSgd sgd(data.ratings, sgd_options(4));
  const double r = train_engine(sgd, data.ratings, 30);
  EXPECT_LT(r, 0.75 * baseline_rmse(data.ratings));
  EXPECT_EQ(sgd.grid().row_blocks(), 4u);
}

TEST(BlockedSgd, SingleWorkerDegeneratesToSerialSgd) {
  const auto data = sgd_dataset(11);
  BlockedSgd sgd(data.ratings, sgd_options(1));
  const double r = train_engine(sgd, data.ratings, 25);
  EXPECT_LT(r, 0.8 * baseline_rmse(data.ratings));
}

// ---------- NOMAD ----------

TEST(Nomad, ShardsPartitionAllRatings) {
  const auto data = sgd_dataset(13);
  NomadSgd sgd(data.ratings, sgd_options(3));
  nnz_t total = 0;
  for (int w = 0; w < 3; ++w) {
    for (index_t v = 0; v < data.ratings.cols(); ++v) {
      total += sgd.shard_column(w, v).size();
    }
  }
  EXPECT_EQ(total, data.ratings.nnz());
}

TEST(Nomad, TokenRingConvergesSingleWorker) {
  const auto data = sgd_dataset(17);
  NomadSgd sgd(data.ratings, sgd_options(1));
  const double r = train_engine(sgd, data.ratings, 25);
  EXPECT_LT(r, 0.8 * baseline_rmse(data.ratings));
}

TEST(Nomad, TokenRingConvergesMultiWorker) {
  const auto data = sgd_dataset(19);
  NomadSgd sgd(data.ratings, sgd_options(3));
  const double r = train_engine(sgd, data.ratings, 25);
  EXPECT_LT(r, 0.8 * baseline_rmse(data.ratings));
}

// ---------- GPU-SGD ----------

TEST(GpuSgd, ConvergesWithFp16Factors) {
  const auto data = sgd_dataset(23);
  GpuSgd::Options options;
  static_cast<SgdOptions&>(options) = sgd_options(1);
  options.half_precision = true;
  GpuSgd sgd(data.ratings, options);
  const double r = train_engine(sgd, data.ratings, 30);
  EXPECT_LT(r, 0.8 * baseline_rmse(data.ratings));
}

TEST(GpuSgd, Fp16EpochIsModelledFaster) {
  const auto data = sgd_dataset(29);
  GpuSgd::Options fp16;
  static_cast<SgdOptions&>(fp16) = sgd_options(1);
  fp16.half_precision = true;
  auto fp32 = fp16;
  fp32.half_precision = false;
  GpuSgd a(data.ratings, fp16);
  GpuSgd b(data.ratings, fp32);
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  EXPECT_LT(a.epoch_seconds(dev), b.epoch_seconds(dev));
  // Multi-GPU cuts per-epoch time at full dataset scale (at toy scale the
  // all-gather dominates, which the model correctly reports).
  EXPECT_LT(sgd_epoch_seconds(dev, 99e6, 100, true, 4,
                              gpusim::LinkSpec::nvlink(), 480189, 17770),
            sgd_epoch_seconds(dev, 99e6, 100, true, 1,
                              gpusim::LinkSpec::nvlink(), 480189, 17770));
}

// ---------- CCD++ ----------

TEST(Ccd, ResidualsStayConsistentWithFactors) {
  const auto data = sgd_dataset(31);
  CcdOptions options;
  options.f = 8;
  options.lambda = 0.05f;
  CcdEngine ccd(data.ratings, options);
  ccd.run_epoch();
  ccd.run_epoch();
  // res_uv must equal r_uv − x_u·θ_v for every training entry.
  const auto& csr = ccd.ratings();
  const auto& res = ccd.residuals();
  for (index_t u = 0; u < csr.rows(); ++u) {
    const auto cols = csr.row_cols(u);
    const auto vals = csr.row_vals(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double pred =
          dot(ccd.user_factors().row(u), ccd.item_factors().row(cols[k]));
      EXPECT_NEAR(res[csr.row_ptr()[u] + k], vals[k] - pred, 2e-2);
    }
  }
}

TEST(Ccd, ConvergesOnPlantedData) {
  const auto data = sgd_dataset(37);
  CcdOptions options;
  options.f = 12;
  options.lambda = 0.05f;
  CcdEngine ccd(data.ratings, options);
  const double r = train_engine(ccd, data.ratings, 8);
  EXPECT_LT(r, 0.7 * baseline_rmse(data.ratings));
}

TEST(Ccd, LossDecreasesAcrossEpochs) {
  const auto data = sgd_dataset(41);
  CcdOptions options;
  options.f = 8;
  CcdEngine ccd(data.ratings, options);
  double prev = 1e18;
  for (int e = 0; e < 5; ++e) {
    ccd.run_epoch();
    const double r =
        rmse(data.ratings, ccd.user_factors(), ccd.item_factors());
    EXPECT_LE(r, prev * 1.001);
    prev = r;
  }
}

// ---------- GPU-ALS baseline ----------

TEST(GpuAlsBaseline, ConvergesButSlowerEpochsThanCumfals) {
  const auto data = sgd_dataset(43);
  auto baseline = make_gpu_als_baseline(data.ratings, 16, 0.05f);
  for (int e = 0; e < 6; ++e) {
    baseline.engine->run_epoch();
  }
  const double r = rmse(data.ratings, baseline.engine->user_factors(),
                        baseline.engine->item_factors());
  EXPECT_LT(r, 0.7 * baseline_rmse(data.ratings));

  // The kernel config must model slower epochs than cuMF-ALS.
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const auto cumf = cumfals_kernel_config(100, SolverKind::CgFp32);
  auto plain = baseline.kernel_config;
  plain.f = 100;
  plain.tile = 10;
  const double t_plain = als_epoch_seconds(dev, 480189, 17770, 99e6, plain);
  const double t_cumf = als_epoch_seconds(dev, 480189, 17770, 99e6, cumf);
  EXPECT_GT(t_plain / t_cumf, 2.0);  // the paper's headline 2x–4x
  EXPECT_LT(t_plain / t_cumf, 6.0);
}

// ---------- BIDMach ----------

TEST(Bidmach, KernelRunsAtTensOfGflops) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  EXPECT_NEAR(bidmach_hermitian_flops(dev), 40e9, 1e9);
  // Far below what cuMF-ALS sustains on the same device.
  EXPECT_LT(bidmach_hermitian_flops(dev), 0.02 * dev.peak_flops);
}

TEST(Bidmach, EpochTimeOrdersOfMagnitudeSlower) {
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const double bidmach = bidmach_epoch_seconds(dev, 480189, 17770, 99e6, 100);
  const auto cumf = cumfals_kernel_config(100, SolverKind::CgFp32);
  const double ours = als_epoch_seconds(dev, 480189, 17770, 99e6, cumf);
  EXPECT_GT(bidmach / ours, 20.0);
}

TEST(Bidmach, FunctionalEngineStillConverges) {
  const auto data = sgd_dataset(47);
  AlsEngine als(data.ratings, bidmach_als_options(12, 0.05f));
  const double r = train_engine(als, data.ratings, 5);
  EXPECT_LT(r, 0.7 * baseline_rmse(data.ratings));
}

// ---------- implicit CPU ----------

TEST(ImplicitCpu, PaperPerIterationOrdering) {
  // §V-F: cuMF-ALS 2.2 s ≪ implicit 90 s < QMF 360 s (Netflix-implicit).
  const auto host = gpusim::HostSpec::libmf_40core();
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const double m = 480189;
  const double n = 17770;
  const double nnz = 99e6;
  const double gpu = implicit_gpu_iteration_seconds(dev, m, n, nnz, 100, 6);
  const double lib = implicit_cpu_iteration_seconds(
      ImplicitCpuFlavor::ImplicitLib, host, m, n, nnz, 100);
  const double qmf = implicit_cpu_iteration_seconds(ImplicitCpuFlavor::Qmf,
                                                    host, m, n, nnz, 100);
  EXPECT_GT(lib / gpu, 10.0);   // GPU at least an order of magnitude ahead
  EXPECT_GT(qmf / lib, 2.0);    // QMF clearly slower than implicit
  EXPECT_LT(qmf / lib, 10.0);
}

TEST(ImplicitCpu, OptionsMatchLibrarySolvers) {
  EXPECT_EQ(implicit_cpu_options(ImplicitCpuFlavor::ImplicitLib, 16, 0.1f)
                .solver.kind,
            SolverKind::CgFp32);
  EXPECT_EQ(implicit_cpu_options(ImplicitCpuFlavor::Qmf, 16, 0.1f).solver.kind,
            SolverKind::CholeskyFp32);
}

// ---------- cross-algorithm comparison ----------

TEST(Baselines, AllReachComparableAccuracyOnSharedData) {
  // ALS, SGD and CCD++ all minimize eq. (1); on the same planted data they
  // must land in the same RMSE neighbourhood (Fig. 6's "same accuracy").
  const auto data = sgd_dataset(53);
  Rng rng(55);
  const auto split = split_holdout(data.ratings, 0.15, rng);

  AlsOptions als_options;
  als_options.f = 12;
  als_options.lambda = 0.05f;
  als_options.solver.kind = SolverKind::CgFp32;
  AlsEngine als(split.train, als_options);
  for (int e = 0; e < 10; ++e) {
    als.run_epoch();
  }
  const double r_als = rmse(split.test, als.user_factors(),
                            als.item_factors());

  auto sgd_opts = sgd_options(1);
  sgd_opts.lr = 0.03f;
  sgd_opts.lr_decay = 0.05f;
  HogwildSgd sgd(split.train, sgd_opts);
  for (int e = 0; e < 80; ++e) {
    sgd.run_epoch();
  }
  const double r_sgd = rmse(split.test, sgd.user_factors(),
                            sgd.item_factors());

  CcdOptions ccd_options;
  ccd_options.f = 12;
  // CCD++ uses a plain (unweighted) λ: to match ALS-WR's effective ridge of
  // λ_wr·n_u at ~30 ratings per row, the plain λ must be ~30x larger.
  ccd_options.lambda = 1.0f;
  CcdEngine ccd(split.train, ccd_options);
  for (int e = 0; e < 50; ++e) {  // CCD makes less progress per epoch
    ccd.run_epoch();
  }
  const double r_ccd = rmse(split.test, ccd.user_factors(),
                            ccd.item_factors());

  // ALS (direct normal-equation solves with weighted-λ) ends up best on
  // this planted set; SGD and CCD must land in the same neighbourhood —
  // within 1.4x — not at the mean-predictor baseline (≈ 2x r_als).
  EXPECT_LT(r_sgd, 1.4 * r_als);
  EXPECT_LT(r_ccd, 1.4 * r_als);
}

}  // namespace
}  // namespace cumf
