// Tests for the serving layer: batched scoring bit-identity, sharded
// heap-merge equivalence with the offline brute force, the hot-user factor
// cache, histogram percentiles, model-IO round-trip precision, the hybrid
// stream shape guard, and fold-in determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/hybrid.hpp"
#include "data/model_io.hpp"
#include "linalg/dense.hpp"
#include "metrics/ranking.hpp"
#include "prof/counters.hpp"
#include "serve/serve.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (real_t& v : m.data()) {
    v = static_cast<real_t>(rng.normal());
  }
  return m;
}

CsrMatrix random_seen(index_t rows, index_t cols, std::size_t per_row,
                      std::uint64_t seed) {
  Rng rng(seed);
  RatingsCoo coo(rows, cols);
  for (index_t u = 0; u < rows; ++u) {
    for (std::size_t j = 0; j < per_row; ++j) {
      coo.add(u, static_cast<index_t>(rng.uniform_index(cols)),
              static_cast<real_t>(1 + rng.uniform_index(5)));
    }
  }
  coo.sort_and_dedup();
  return CsrMatrix::from_coo(coo);
}

// ---------- dot_rows ----------

TEST(DotRows, BitIdenticalToDotForEveryRowAndPath) {
  for (const std::size_t f : {1UL, 7UL, 8UL, 9UL, 16UL, 63UL, 64UL, 100UL}) {
    const Matrix theta = random_matrix(33, f, 1000 + f);
    const Matrix x = random_matrix(1, f, 2000 + f);
    std::vector<double> batched(theta.rows());
    for (const auto path :
         {simd::KernelPath::scalar, simd::KernelPath::simd}) {
      dot_rows(x.row(0), theta, 0, theta.rows(), batched, path);
      for (std::size_t v = 0; v < theta.rows(); ++v) {
        const double single = dot(x.row(0), theta.row(v), path);
        EXPECT_EQ(batched[v], single) << "f=" << f << " v=" << v;
      }
    }
  }
}

TEST(DotRows, SubrangeAndValidation) {
  const Matrix theta = random_matrix(20, 16, 3);
  const Matrix x = random_matrix(1, 16, 4);
  std::vector<double> out(5);
  dot_rows(x.row(0), theta, 7, 12, out);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], dot(x.row(0), theta.row(7 + i)));
  }
  EXPECT_THROW(dot_rows(x.row(0), theta, 0, 21, out), CheckError);
  EXPECT_THROW(dot_rows(x.row(0), theta, 0, 4, out), CheckError);
}

// ---------- TopKSelector ----------

TEST(TopKSelector, TiesBreakByItemAndOrderDoesNotMatter) {
  const std::vector<ScoredItem> items = {
      {4, 1.0f}, {2, 1.0f}, {9, 2.0f}, {1, 0.5f}, {7, 1.0f}, {0, 2.0f}};
  std::vector<ScoredItem> expect = {{0, 2.0f}, {9, 2.0f}, {2, 1.0f}};
  // Every rotation offers in a different order; the kept set is identical.
  for (std::size_t rot = 0; rot < items.size(); ++rot) {
    TopKSelector sel(3);
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto& it = items[(i + rot) % items.size()];
      sel.offer(it.item, it.score);
    }
    EXPECT_EQ(sel.take_sorted(), expect) << "rotation " << rot;
  }
}

TEST(TopKSelector, EdgeCases) {
  TopKSelector zero(0);
  zero.offer(1, 5.0f);
  EXPECT_TRUE(zero.take_sorted().empty());

  TopKSelector big(10);
  big.offer(3, 1.0f);
  big.offer(1, 2.0f);
  const auto sorted = big.take_sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].item, 1u);
  EXPECT_EQ(sorted[1].item, 3u);
}

// ---------- sharded serving vs offline brute force ----------

TEST(Serve, TopKBitIdenticalToOfflineAcrossShardCounts) {
  const index_t users = 40;
  const index_t items = 101;
  Matrix x = random_matrix(users, 24, 11);
  Matrix theta = random_matrix(items, 24, 12);
  // Force exact score ties: clone some item rows so their dots are equal
  // bit-for-bit and only the item-id tie-break orders them.
  for (index_t v : {5, 50, 77}) {
    std::copy(theta.row(9).begin(), theta.row(9).end(), theta.row(v).begin());
  }
  const auto seen = random_seen(users, items, 12, 13);
  for (const std::size_t shards : {1UL, 2UL, 3UL, 7UL, 200UL}) {
    serve::ServeOptions options;
    options.shards = shards;
    serve::ServeEngine engine(
        FactorModel{Matrix(x), Matrix(theta)}, seen, options);
    for (index_t u = 0; u < users; u += 7) {
      const auto offline = recommend_top_k(x, theta, seen, u, 10);
      const auto served = engine.top_k(u, 10);
      EXPECT_EQ(served, offline) << "shards=" << shards << " user=" << u;
    }
  }
}

TEST(Serve, UnknownUserThrows) {
  serve::ServeEngine engine(
      FactorModel{random_matrix(5, 8, 1), random_matrix(9, 8, 2)},
      random_seen(5, 9, 3, 3), {});
  EXPECT_THROW(engine.top_k(5, 3), serve::ServeError);
}

// ---------- hot-user factor cache ----------

TEST(Serve, CacheHitsAreResultNeutralAndCounted) {
  const auto seen = random_seen(30, 60, 8, 21);
  FactorModel model{random_matrix(30, 16, 22), random_matrix(60, 16, 23)};
  serve::ServeOptions cached;
  cached.cache_capacity = 4;
  serve::ServeEngine with_cache(
      FactorModel{Matrix(model.x), Matrix(model.theta)}, seen, cached);
  serve::ServeEngine no_cache(std::move(model), seen, {});

  Rng rng(24);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<index_t>(rng.uniform_index(30));
    EXPECT_EQ(with_cache.top_k(u, 5), no_cache.top_k(u, 5));
  }
  const auto stats = with_cache.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 200u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // 30 users through a 4-entry cache
}

TEST(Serve, FoldInInvalidatesCachedFactor) {
  const auto seen = random_seen(10, 40, 6, 31);
  serve::ServeOptions options;
  options.cache_capacity = 8;
  serve::ServeEngine engine(
      FactorModel{random_matrix(10, 12, 32), random_matrix(40, 12, 33)},
      seen, options);
  (void)engine.top_k(3, 5);  // warm the cache
  const auto before = engine.user_factor(3);
  engine.observe(Rating{3, 17, 5.0f});
  EXPECT_GE(engine.cache_stats().invalidations, 1u);
  EXPECT_NE(engine.user_factor(3), before);  // refolded against the rating
  // The rated item can no longer be recommended.
  for (const auto& item : engine.top_k(3, 40)) {
    EXPECT_NE(item.item, 17u);
  }
}

// ---------- histogram percentiles ----------

TEST(Histogram, NearestRankPercentilesOnExactBuckets) {
  prof::Histogram h;
  for (int v = 1; v <= 100; ++v) {
    h.observe(v);  // integers ≤ 128 land in exact buckets
  }
  EXPECT_EQ(h.percentile(0.0), 1.0);
  EXPECT_EQ(h.percentile(0.50), 50.0);
  EXPECT_EQ(h.percentile(0.95), 95.0);
  EXPECT_EQ(h.percentile(0.99), 99.0);
  EXPECT_EQ(h.percentile(1.0), 100.0);

  prof::Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0.0);
}

TEST(Histogram, PercentilesAreMergeStable) {
  Rng rng(41);
  prof::Histogram whole;
  prof::Histogram shard_a;
  prof::Histogram shard_b;
  for (int i = 0; i < 4000; ++i) {
    const double v = std::exp(rng.normal(3.0, 1.5));  // latency-ish spread
    whole.observe(v);
    (i % 2 == 0 ? shard_a : shard_b).observe(v);
  }
  shard_a.merge(shard_b);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(whole.percentile(q), shard_a.percentile(q)) << "q=" << q;
  }
}

// ---------- AUC negative sampling ----------

TEST(Ranking, AucNearDenseUserNeverSamplesRatedAsNegative) {
  // One user rated 49 of 50 items. Observed items score 1, the lone unseen
  // item scores 0 — so with correct negative sampling every comparison is a
  // win and AUC is exactly 1. The old sampler drew negatives from all
  // columns (rated included), which made "observed vs itself" ties drag the
  // estimate below 1 for dense users.
  const index_t items = 50;
  RatingsCoo coo(1, items);
  for (index_t v = 0; v < items; ++v) {
    if (v != 13) {
      coo.add(0, v, 1.0f);
    }
  }
  coo.sort_and_dedup();
  const auto observed = CsrMatrix::from_coo(coo);
  Matrix x(1, items);
  Matrix theta(items, items);
  for (index_t v = 0; v < items; ++v) {
    x.row(0)[v] = (v == 13) ? 0.0f : 1.0f;
    theta.row(v)[v] = 1.0f;  // score(u, v) = x_u[v]
  }
  Rng rng(51);
  EXPECT_EQ(auc_observed_vs_random(x, theta, observed, 500, rng), 1.0);
}

TEST(Ranking, AucFullyRatedUserFallsBackToHalf) {
  RatingsCoo coo(1, 4);
  for (index_t v = 0; v < 4; ++v) {
    coo.add(0, v, 1.0f);
  }
  coo.sort_and_dedup();
  Rng rng(52);
  EXPECT_EQ(auc_observed_vs_random(random_matrix(1, 4, 1),
                                   random_matrix(4, 4, 2),
                                   CsrMatrix::from_coo(coo), 64, rng),
            0.5);
}

// ---------- model IO round-trip ----------

TEST(ModelIo, RoundTripIsBitExactForAdversarialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> nasty = {
      0.1f,
      std::nextafterf(1.0f, 2.0f),
      std::nextafterf(1.0f, 0.0f),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::min(),
      std::numeric_limits<float>::max(),
      -0.0f,
      0.0f,
      inf,
      -inf,
      3.0000002f,
  };
  FactorModel model{Matrix(3, 4), Matrix(2, 4)};
  std::size_t i = 0;
  for (real_t& v : model.x.data()) {
    v = nasty[i++ % nasty.size()];
  }
  for (real_t& v : model.theta.data()) {
    v = nasty[i++ % nasty.size()];
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_model_bits.txt")
          .string();
  write_model_file(path, model);
  const FactorModel back = read_model_file(path);
  ASSERT_EQ(back.x.rows(), model.x.rows());
  ASSERT_EQ(back.theta.rows(), model.theta.rows());
  for (std::size_t j = 0; j < model.x.data().size(); ++j) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(model.x.data()[j]),
              std::bit_cast<std::uint32_t>(back.x.data()[j]))
        << "x[" << j << "]";
  }
  for (std::size_t j = 0; j < model.theta.data().size(); ++j) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(model.theta.data()[j]),
              std::bit_cast<std::uint32_t>(back.theta.data()[j]))
        << "theta[" << j << "]";
  }
  std::filesystem::remove(path);
}

TEST(ModelIo, NanSurvivesAsNan) {
  FactorModel model{Matrix(1, 2), Matrix(1, 2)};
  model.x.data()[0] = std::numeric_limits<float>::quiet_NaN();
  model.x.data()[1] = 1.0f;
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_model_nan.txt")
          .string();
  write_model_file(path, model);
  const FactorModel back = read_model_file(path);
  EXPECT_TRUE(std::isnan(back.x.data()[0]));
  EXPECT_EQ(back.x.data()[1], 1.0f);
  std::filesystem::remove(path);
}

// ---------- hybrid stream shape guard ----------

TEST(Hybrid, StreamShapeErrorNamesTheRatingAndRoutesToFoldIn) {
  Rng rng(61);
  RatingsCoo coo(20, 10);
  for (int i = 0; i < 120; ++i) {
    coo.add(static_cast<index_t>(rng.uniform_index(20)),
            static_cast<index_t>(rng.uniform_index(10)),
            static_cast<real_t>(1 + rng.uniform_index(5)));
  }
  coo.sort_and_dedup();
  HybridOptions options;
  options.batch_epochs = 1;
  HybridEngine hybrid(coo, options);
  try {
    hybrid.observe(Rating{99, 3, 1.0f});
    FAIL() << "expected StreamShapeError";
  } catch (const StreamShapeError& e) {
    EXPECT_EQ(e.rating().u, 99u);
    EXPECT_EQ(e.rating().v, 3u);
    EXPECT_NE(std::string(e.what()).find("fold"), std::string::npos);
  }
  // Still a CheckError, so existing catch sites keep working.
  EXPECT_THROW(hybrid.observe(Rating{0, 99, 1.0f}), CheckError);
}

// ---------- fold-in ----------

TEST(Serve, FoldInIsDeterministicAndChangesResponses) {
  const auto seen = random_seen(25, 80, 10, 71);
  FactorModel model{random_matrix(25, 16, 72), random_matrix(80, 16, 73)};
  serve::ServeEngine a(FactorModel{Matrix(model.x), Matrix(model.theta)},
                       seen, {});
  serve::ServeEngine b(std::move(model), seen, {});

  const auto before = a.top_k(7, 5);
  const std::vector<Rating> stream = {
      {7, 2, 5.0f}, {7, 44, 1.0f}, {3, 60, 4.0f}, {7, 2, 2.0f}};
  for (const auto& r : stream) {
    a.observe(r);
    b.observe(r);
  }
  EXPECT_EQ(a.user_factor(7), b.user_factor(7));
  EXPECT_EQ(a.top_k(7, 5), b.top_k(7, 5));
  EXPECT_NE(a.top_k(7, 5), before);
  EXPECT_GE(a.solve_stats().systems, 4u);
}

TEST(Serve, NewUsersGrowContiguouslyNewItemsRejected) {
  const auto seen = random_seen(10, 30, 5, 81);
  serve::ServeEngine engine(
      FactorModel{random_matrix(10, 8, 82), random_matrix(30, 8, 83)}, seen,
      {});
  EXPECT_EQ(engine.users(), 10u);
  EXPECT_THROW(engine.observe(Rating{12, 0, 1.0f}), serve::ServeError);
  EXPECT_THROW(engine.observe(Rating{0, 30, 1.0f}), serve::ServeError);

  engine.observe(Rating{10, 4, 5.0f});  // u == users(): brand-new user
  EXPECT_EQ(engine.users(), 11u);
  const auto recs = engine.top_k(10, 30);
  EXPECT_FALSE(recs.empty());
  for (const auto& item : recs) {
    EXPECT_NE(item.item, 4u);
  }

  const std::vector<serve::ServeEngine::ItemRating> batch = {
      {1, 5.0f}, {9, 3.0f}};
  EXPECT_EQ(engine.fold_in_user(batch), 11u);
  EXPECT_EQ(engine.users(), 12u);
  EXPECT_THROW(engine.fold_in_user({}), serve::ServeError);
}

TEST(Serve, ConcurrentTopKWhileFoldingSmoke) {
  const auto seen = random_seen(60, 120, 10, 91);
  serve::ServeOptions options;
  options.shards = 3;
  options.cache_capacity = 16;
  serve::ServeEngine engine(
      FactorModel{random_matrix(60, 16, 92), random_matrix(120, 16, 93)},
      seen, options);
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 150; ++i) {
        const auto u = static_cast<index_t>(rng.uniform_index(60));
        if (engine.top_k(u, 8).empty()) {
          failed = true;
        }
      }
    });
  }
  Rng wrng(200);
  for (int i = 0; i < 40; ++i) {
    engine.observe(Rating{static_cast<index_t>(wrng.uniform_index(60)),
                          static_cast<index_t>(wrng.uniform_index(120)),
                          static_cast<real_t>(1 + wrng.uniform_index(5))});
  }
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(failed);
}

}  // namespace
}  // namespace cumf
