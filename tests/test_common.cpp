// Unit tests for the common substrate: checks, RNG, thread pool, table.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace cumf {
namespace {

// ---------- check macros ----------

TEST(Check, ExpectsThrowsOnViolation) {
  EXPECT_THROW(CUMF_EXPECTS(false, "boom"), CheckError);
  EXPECT_NO_THROW(CUMF_EXPECTS(true, "fine"));
}

TEST(Check, EnsuresThrowsWithContext) {
  try {
    CUMF_ENSURES(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math broke"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

// ---------- RNG ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b();
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIndexIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const auto idx = rng.uniform_index(kBuckets);
    ASSERT_LT(idx, kBuckets);
    ++counts[idx];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScalesCorrectly) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(99);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += s0() == s1();
  }
  EXPECT_LT(same, 4);
}

TEST(Zipf, UniformWhenExponentZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 5000, 600);
  }
}

TEST(Zipf, SkewedTowardSmallRanks) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(5);
  int head = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    head += zipf(rng) < 10;
  }
  // With s=1, the top-10 of 1000 carry ~39% of the mass.
  EXPECT_GT(head, kSamples / 4);
  EXPECT_LT(head, kSamples / 2);
}

TEST(Zipf, RejectsEmptySupport) {
  EXPECT_THROW(ZipfSampler(0, 1.0), CheckError);
  EXPECT_THROW(ZipfSampler(5, -0.1), CheckError);
}

// ---------- ThreadPool ----------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(101);
  pool.parallel_for(touched.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        touched[i].fetch_add(1);
                      }
                    });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), CheckError);
}

TEST(ThreadPool, TasksSubmittedFromWorkersAreWaitedFor) {
  // Regression: wait_idle must cover follow-up tasks submitted by running
  // tasks, not just the ones enqueued before the wait started.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 8 * 5);
}

TEST(ThreadPool, WaitIdleFromWorkerHelpsInsteadOfDeadlocking) {
  // Regression: a task that submits children and then calls wait_idle used
  // to block its own worker; with one of two workers gone the pool could
  // stall. The waiter must help drain the queue and observe all children
  // finished before proceeding.
  ThreadPool pool(2);
  std::atomic<int> children{0};
  std::atomic<int> observed{-1};
  pool.submit([&] {
    for (int j = 0; j < 6; ++j) {
      pool.submit([&children] { children.fetch_add(1); });
    }
    pool.wait_idle();
    observed.store(children.load());
  });
  pool.wait_idle();
  EXPECT_EQ(observed.load(), 6);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // parallel_for bodies issuing their own parallel_for: every chunk task
  // ends in an inner wait_idle on a worker thread.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      pool.parallel_for(8,
                        [&](std::size_t b2, std::size_t e2, std::size_t) {
                          counter.fetch_add(static_cast<int>(e2 - b2));
                        });
    }
  });
  EXPECT_EQ(counter.load(), 4 * 8);
}

TEST(ThreadPool, SingleWorkerNestedWaitStillDrains) {
  // Worst case for helping: one worker, so nobody else can ever pick up the
  // children while the parent waits.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.submit([&] {
    pool.submit([&] {
      pool.submit([&counter] { counter.fetch_add(1); });
      pool.wait_idle();
      counter.fetch_add(10);
    });
    pool.wait_idle();
    counter.fetch_add(100);
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 111);
}

TEST(ThreadPool, ConcurrentSubmitsFromManyWorkers) {
  // Stress for the TSan job: many workers racing on submit + completion
  // accounting while an external thread waits.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      for (int j = 0; j < 16; ++j) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 32 * 16);
}

TEST(ThreadPool, ParallelForStaticCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(97);
  std::atomic<int> calls{0};
  pool.parallel_for_static(
      touched.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        calls.fetch_add(1);
        for (std::size_t i = begin; i < end; ++i) {
          touched[i].fetch_add(1);
        }
      });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
  // Static partition: exactly one contiguous call per worker.
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ParallelForWorkerIdsStayWithinPoolSize) {
  // The guided schedule hands each worker id to exactly one task, so bodies
  // may index per-worker scratch with it; ids must never exceed size().
  ThreadPool pool(4);
  std::vector<std::atomic<int>> per_worker(4);
  pool.parallel_for(1000,
                    [&](std::size_t begin, std::size_t end, std::size_t w) {
                      ASSERT_LT(w, 4u);
                      per_worker[w].fetch_add(static_cast<int>(end - begin));
                    });
  int total = 0;
  for (auto& c : per_worker) {
    total += c.load();
  }
  EXPECT_EQ(total, 1000);
}

TEST(ThreadPool, ParallelForChunksRespectsBoundaries) {
  ThreadPool pool(2);
  const std::vector<std::size_t> bounds{0, 3, 3, 10, 11};
  std::vector<std::atomic<int>> touched(11);
  std::atomic<int> calls{0};
  pool.parallel_for_chunks(
      bounds, [&](std::size_t begin, std::size_t end, std::size_t) {
        calls.fetch_add(1);
        // Every (begin, end) must be one of the non-empty chunks verbatim.
        const bool known = (begin == 0 && end == 3) ||
                           (begin == 3 && end == 10) ||
                           (begin == 10 && end == 11);
        EXPECT_TRUE(known) << begin << ".." << end;
        for (std::size_t i = begin; i < end; ++i) {
          touched[i].fetch_add(1);
        }
      });
  EXPECT_EQ(calls.load(), 3);  // the empty [3,3) chunk is skipped
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPool, ParallelForChunksRejectsBadBounds) {
  ThreadPool pool(1);
  const std::vector<std::size_t> not_from_zero{1, 5};
  const std::vector<std::size_t> descending{0, 5, 3};
  const std::vector<std::size_t> too_short{0};
  const auto body = [](std::size_t, std::size_t, std::size_t) {};
  EXPECT_THROW(pool.parallel_for_chunks(not_from_zero, body), CheckError);
  EXPECT_THROW(pool.parallel_for_chunks(descending, body), CheckError);
  EXPECT_THROW(pool.parallel_for_chunks(too_short, body), CheckError);
}

TEST(ThreadPool, GuidedScheduleSurvivesPathologicalSkew) {
  // One index carries ~90% of the total work. A static partition strands
  // the whole range behind whichever worker draws it; the guided schedule
  // must still complete promptly with every index executed exactly once,
  // and no worker may observe a torn per-worker accumulator (TSan-audited).
  ThreadPool pool(4);
  constexpr std::size_t kN = 256;
  std::vector<std::atomic<int>> touched(kN);
  std::vector<double> per_worker(4, 0.0);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end,
                            std::size_t w) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      // Index 0 is the pathological row: ~90% of all iterations.
      const int spins = i == 0 ? 90000 : 40;
      for (int s = 0; s < spins; ++s) {
        acc += std::sqrt(static_cast<double>(s + i));
      }
      touched[i].fetch_add(1);
    }
    per_worker[w] += acc;  // per-worker slot: must be race-free
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

// ---------- Table ----------

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Stopwatch, MeasuresNonNegativeMonotoneTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

TEST(Stopwatch, LapMeasuresIntervalsWhileSecondsAccumulates) {
  Stopwatch sw;
  const double lap1 = sw.lap();
  const double lap2 = sw.lap();
  const double total = sw.seconds();
  EXPECT_GE(lap1, 0.0);
  EXPECT_GE(lap2, 0.0);
  // seconds() keeps counting from construction, so the laps partition it.
  EXPECT_GE(total, lap1 + lap2 - 1e-9);
  sw.reset();
  EXPECT_LT(sw.lap(), 1.0);
}

TEST(Stopwatch, NowNsIsMonotoneAcrossThreads) {
  const std::uint64_t a = Stopwatch::now_ns();
  const std::uint64_t b = Stopwatch::now_ns();
  EXPECT_GE(b, a);
  // The epoch is process-wide: another thread's reading is on the same
  // timeline, not near zero.
  std::uint64_t from_thread = 0;
  std::thread([&from_thread] { from_thread = Stopwatch::now_ns(); }).join();
  EXPECT_GE(from_thread, a);
}

}  // namespace
}  // namespace cumf
