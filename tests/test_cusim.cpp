// Tests for the cusim SIMT execution layer and the CUDA-style kernels
// written on it: barrier semantics, shared-memory communication, barrier-
// divergence detection, and differential tests of the hermitian and
// batch-CG kernels against the direct host implementations.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/hermitian.hpp"
#include "cusim/cusim.hpp"
#include "cusim/kernels.hpp"
#include "data/generator.hpp"
#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "sparse/csr.hpp"

namespace cumf::cusim {
namespace {

// ---------- execution layer ----------

TEST(Cusim, EveryThreadOfEveryBlockRuns) {
  std::vector<int> counts(4 * 8, 0);
  LaunchConfig config{Dim3{4}, Dim3{8}, 0};
  launch(config, [&](KernelCtx ctx) -> ThreadTask {
    counts[ctx.blockIdx.x * 8 + ctx.tid()] += 1;
    co_return;
  });
  for (const int c : counts) {
    EXPECT_EQ(c, 1);
  }
}

TEST(Cusim, GridStrideLoopCoversArray) {
  // The canonical CUDA saxpy: y += a*x with a grid-stride loop.
  const std::size_t n = 1000;
  std::vector<float> x(n, 2.0f);
  std::vector<float> y(n, 1.0f);
  LaunchConfig config{Dim3{4}, Dim3{32}, 0};
  launch(config, [&](KernelCtx ctx) -> ThreadTask {
    const unsigned stride = ctx.gridDim.x * ctx.blockDim.x;
    for (std::size_t i = ctx.blockIdx.x * ctx.blockDim.x + ctx.tid(); i < n;
         i += stride) {
      y[i] += 3.0f * x[i];
    }
    co_return;
  });
  for (const float v : y) {
    EXPECT_EQ(v, 7.0f);
  }
}

TEST(Cusim, BarrierOrdersSharedMemoryAccess) {
  // Producer/consumer through shared memory: thread 0 writes, everyone
  // reads after the barrier. Without barrier semantics the read would be 0.
  std::vector<int> seen(16, -1);
  LaunchConfig config{Dim3{1}, Dim3{16}, sizeof(int)};
  launch(config, [&](KernelCtx ctx) -> ThreadTask {
    auto cell = ctx.shared_array<int>(0, 1);
    if (ctx.tid() == 15) {  // deliberately the LAST thread produces
      cell[0] = 42;
    }
    co_await ctx.sync();
    seen[ctx.tid()] = cell[0];
    co_return;
  });
  for (const int v : seen) {
    EXPECT_EQ(v, 42);
  }
}

TEST(Cusim, TreeReductionAcrossBarriers) {
  const unsigned n = 24;  // non-power-of-two
  std::vector<float> result(1, 0);
  LaunchConfig config{Dim3{1}, Dim3{n}, n * sizeof(float)};
  launch(config, [&](KernelCtx ctx) -> ThreadTask {
    auto red = ctx.shared_array<float>(0, n);
    const unsigned t = ctx.tid();
    red[t] = static_cast<float>(t + 1);  // sum = n(n+1)/2
    co_await ctx.sync();
    for (unsigned s = 16; s > 0; s >>= 1) {
      if (t < s && t + s < n) {
        red[t] += red[t + s];
      }
      co_await ctx.sync();
    }
    if (t == 0) {
      result[0] = red[0];
    }
    co_return;
  });
  EXPECT_EQ(result[0], n * (n + 1) / 2);
}

TEST(Cusim, DetectsBarrierDivergence) {
  LaunchConfig config{Dim3{1}, Dim3{4}, 0};
  EXPECT_THROW(
      launch(config,
             [&](KernelCtx ctx) -> ThreadTask {
               if (ctx.tid() < 2) {
                 co_await ctx.sync();  // half the block syncs…
               }
               co_return;  // …the other half exits: CUDA UB, cusim error
             }),
      BarrierDivergence);
}

TEST(Cusim, BarrierDivergenceMessageNamesBlockAndPendingCount) {
  // One thread of block (2,0,0) exits while the rest wait: the diagnostic
  // must name that block and say how many threads never reached the barrier.
  LaunchConfig config{Dim3{3}, Dim3{4}, 0};
  try {
    launch(config, [&](KernelCtx ctx) -> ThreadTask {
      if (ctx.blockIdx.x == 2 && ctx.tid() == 3) {
        co_return;
      }
      co_await ctx.sync();
      co_return;
    });
    FAIL() << "expected BarrierDivergence";
  } catch (const BarrierDivergence& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("block (2,0,0)"), std::string::npos) << what;
    EXPECT_NE(what.find("3 of 4 threads reached __syncthreads()"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("1 still pending"), std::string::npos) << what;
  }
}

TEST(Cusim, BarrierDivergenceMessageCountsAllPendingThreads) {
  // The converse skew: only thread 0 syncs, three never arrive.
  LaunchConfig config{Dim3{1}, Dim3{4}, 0};
  try {
    launch(config, [&](KernelCtx ctx) -> ThreadTask {
      if (ctx.tid() == 0) {
        co_await ctx.sync();
      }
      co_return;
    });
    FAIL() << "expected BarrierDivergence";
  } catch (const BarrierDivergence& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("block (0,0,0)"), std::string::npos) << what;
    EXPECT_NE(what.find("1 of 4 threads reached __syncthreads()"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("3 still pending"), std::string::npos) << what;
  }
}

TEST(Cusim, SharedMemoryIsZeroedPerBlock) {
  std::vector<int> observed(3, -1);
  LaunchConfig config{Dim3{3}, Dim3{1}, sizeof(int)};
  launch(config, [&](KernelCtx ctx) -> ThreadTask {
    auto cell = ctx.shared_array<int>(0, 1);
    observed[ctx.blockIdx.x] = cell[0];  // must not see prior block's 7
    cell[0] = 7;
    co_return;
  });
  for (const int v : observed) {
    EXPECT_EQ(v, 0);
  }
}

TEST(Cusim, PropagatesKernelExceptions) {
  LaunchConfig config{Dim3{1}, Dim3{2}, 0};
  EXPECT_THROW(launch(config,
                      [&](KernelCtx ctx) -> ThreadTask {
                        if (ctx.tid() == 1) {
                          throw std::runtime_error("device assert");
                        }
                        co_return;
                      }),
               std::runtime_error);
}

TEST(Cusim, SharedArrayValidatesBounds) {
  LaunchConfig config{Dim3{1}, Dim3{1}, 8};
  EXPECT_THROW(launch(config,
                      [&](KernelCtx ctx) -> ThreadTask {
                        (void)ctx.shared_array<double>(0, 2);  // 16 > 8
                        co_return;
                      }),
               CheckError);
}

// ---------- hermitian kernel ----------

TEST(CusimKernels, HermitianMatchesHostImplementation) {
  SyntheticConfig cfg;
  cfg.m = 40;
  cfg.n = 30;
  cfg.nnz = 600;
  cfg.seed = 3;
  const auto data = generate_synthetic(cfg);
  const auto csr = CsrMatrix::from_coo(data.ratings);
  const std::size_t f = 20;
  Matrix theta(csr.cols(), f);
  Rng rng(5);
  for (auto& v : theta.data()) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }

  const auto device = hermitian_kernel_launch(csr, theta, 0.05f, 5, 8);

  std::vector<real_t> a_host(f * f);
  std::vector<real_t> b_host(f);
  HermitianWorkspace ws;
  for (index_t u = 0; u < csr.rows(); ++u) {
    get_hermitian_row(csr, theta, u, 0.05f, HermitianParams{5, 8}, ws,
                      a_host, b_host);
    const double deg = csr.row_nnz(u) + 1.0;
    for (std::size_t i = 0; i < f * f; ++i) {
      ASSERT_NEAR(device.a[u * f * f + i], a_host[i], 1e-3 * deg)
          << "row " << u << " element " << i;
    }
    for (std::size_t i = 0; i < f; ++i) {
      ASSERT_NEAR(device.b[u * f + i], b_host[i], 1e-3 * deg);
    }
  }
}

TEST(CusimKernels, HermitianHandlesEmptyRows) {
  RatingsCoo coo(3, 4);
  coo.add(0, 1, 2.0f);  // rows 1 and 2 empty
  const auto csr = CsrMatrix::from_coo(coo);
  Matrix theta(4, 4, 1.0f);
  const auto device = hermitian_kernel_launch(csr, theta, 0.1f, 2, 4);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(device.a[1 * 16 + i], 0.0f);
    EXPECT_EQ(device.a[2 * 16 + i], 0.0f);
  }
  // Row 0: A = θθᵀ + λ·1·I = all-ones + 0.1 on the diagonal.
  EXPECT_NEAR(device.a[0], 1.1f, 1e-6);
  EXPECT_NEAR(device.a[1], 1.0f, 1e-6);
}

// ---------- batch CG kernel ----------

TEST(CusimKernels, CgMatchesHostSolver) {
  const std::size_t batch = 6;
  const std::size_t f = 24;
  Rng rng(7);
  std::vector<real_t> a(batch * f * f);
  std::vector<real_t> b(batch * f);
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<real_t> g(f * f);
    for (auto& v : g) {
      v = static_cast<real_t>(rng.normal(0.0, 1.0));
    }
    for (std::size_t r = 0; r < f; ++r) {
      for (std::size_t c = 0; c < f; ++c) {
        double acc = r == c ? 2.0 : 0.0;
        for (std::size_t k = 0; k < f; ++k) {
          acc += static_cast<double>(g[r * f + k]) *
                 static_cast<double>(g[c * f + k]);
        }
        a[i * f * f + r * f + c] = static_cast<real_t>(acc);
      }
    }
  }
  for (auto& v : b) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }

  std::vector<real_t> x_device(batch * f, 0.0f);
  cg_kernel_launch(batch, f, a, b, x_device, 6, 1e-4f);

  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<real_t> x_host(f, 0.0f);
    cg_solve<float>(f, std::span<const real_t>(a).subspan(i * f * f, f * f),
                    std::span<const real_t>(b).subspan(i * f, f), x_host, 6,
                    1e-4f);
    for (std::size_t k = 0; k < f; ++k) {
      // The device kernel reduces in FP32, the host in FP64: allow small
      // divergence between the two 6-step iterates.
      EXPECT_NEAR(x_device[i * f + k], x_host[k], 0.02) << "sys " << i;
    }
  }
}

TEST(CusimKernels, CgSolvesToExactnessWithEnoughIterations) {
  const std::size_t f = 16;
  Rng rng(9);
  std::vector<real_t> g(f * f);
  for (auto& v : g) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  std::vector<real_t> a(f * f);
  for (std::size_t r = 0; r < f; ++r) {
    for (std::size_t c = 0; c < f; ++c) {
      double acc = r == c ? 1.0 : 0.0;
      for (std::size_t k = 0; k < f; ++k) {
        acc += static_cast<double>(g[r * f + k]) *
               static_cast<double>(g[c * f + k]);
      }
      a[r * f + c] = static_cast<real_t>(acc);
    }
  }
  std::vector<real_t> b(f, 1.0f);
  std::vector<real_t> exact(f);
  ASSERT_TRUE(solve_spd(f, a, b, exact));

  std::vector<real_t> x(f, 0.0f);
  cg_kernel_launch(1, f, a, b, x, 3 * static_cast<std::uint32_t>(f), 1e-6f);
  EXPECT_LT(max_abs_diff(x, exact), 5e-2);
}

TEST(CusimKernels, CgWarmStartConvergesInstantly) {
  const std::size_t f = 8;
  std::vector<real_t> a(f * f, 0.0f);
  std::vector<real_t> b(f);
  std::vector<real_t> x(f);
  for (std::size_t i = 0; i < f; ++i) {
    a[i * f + i] = 2.0f;
    x[i] = static_cast<real_t>(i);  // exact solution of 2I·x = b
    b[i] = 2.0f * x[i];
  }
  const auto expected = x;
  cg_kernel_launch(1, f, a, b, x, 10, 1e-5f);
  EXPECT_EQ(x, expected);  // residual 0 at entry → untouched
}

}  // namespace
}  // namespace cumf::cusim
