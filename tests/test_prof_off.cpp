// Null-expansion test: with CUMF_PROF_FORCE_OFF defined before the header,
// the instrumentation macros must compile to no-ops — no events recorded
// even while the tracer is enabled — and expand cleanly in every syntactic
// position the codebase uses them in (statement, if-branch, loop body).
// Linking this TU into the same binary as the instrumented test_prof.cpp
// also exercises the ODR guarantee: only the macros differ per TU.
#define CUMF_PROF_FORCE_OFF 1

#include <gtest/gtest.h>

#include "prof/prof.hpp"

namespace cumf::prof {
namespace {

TEST(ProfForcedOff, MacrosExpandToNoOps) {
  Tracer::instance().disable();
  Tracer::instance().reset();
  Tracer::instance().enable();

  const std::uint64_t before = Tracer::instance().local().pushed();
  {
    CUMF_PROF_SCOPE("invisible", "off");
    CUMF_PROF_COUNTER("invisible_counter", 1.0);
  }
  if (true)
    CUMF_PROF_SCOPE("branch_position");
  for (int i = 0; i < 3; ++i) CUMF_PROF_SCOPE("loop_position");
  EXPECT_EQ(Tracer::instance().local().pushed(), before);

  // The tracer object itself still works from a null TU — only the macros
  // are compiled out, so manual recording (e.g. the ALS phase timing path)
  // keeps functioning.
  Tracer::instance().complete_span("manual", "off", 10, 20);
  EXPECT_EQ(Tracer::instance().local().pushed(), before + 1);

  Tracer::instance().disable();
  Tracer::instance().reset();
}

TEST(ProfForcedOff, CounterArgumentIsNotEvaluated) {
  int evaluated = 0;
  auto side_effect = [&evaluated] {
    ++evaluated;
    return 1.0;
  };
  CUMF_PROF_COUNTER("never", side_effect());
  EXPECT_EQ(evaluated, 0) << "null CUMF_PROF_COUNTER must not evaluate its "
                             "value expression";
}

}  // namespace
}  // namespace cumf::prof
