// Robustness layer: CRC32, atomic writes, checkpoint format + resume,
// solver graceful degradation, fault injection, and the model/ratings I/O
// hardening. The crash-and-resume path is also exercised end-to-end at the
// CLI level (tools/CMakeLists.txt, cli_crash_resume_*).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/faultinject.hpp"
#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/solver.hpp"
#include "data/atomic_file.hpp"
#include "data/checkpoint.hpp"
#include "data/generator.hpp"
#include "data/io.hpp"
#include "data/model_io.hpp"

namespace cumf {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

bool all_finite(const Matrix& m) {
  for (const real_t v : m.data()) {
    if (!std::isfinite(v)) {
      return false;
    }
  }
  return true;
}

// ---------- CRC32 ----------

TEST(Crc32, MatchesKnownAnswer) {
  // The standard CRC-32 check value (zlib, PNG, gzip all agree on it).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(Crc32, RunningUpdateMatchesOneShot) {
  const std::string data = "123456789";
  const std::uint32_t part = crc32(0, data.data(), 4);
  EXPECT_EQ(crc32(part, data.data() + 4, 5), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  const std::uint32_t clean = crc32(data);
  data[7] ^= 0x01;
  EXPECT_NE(crc32(data), clean);
}

// ---------- Rng state round trip ----------

TEST(RngState, ResumedStreamIsBitIdentical) {
  Rng rng(42);
  for (int i = 0; i < 7; ++i) {  // odd count: leaves a cached Box-Muller half
    rng.normal();
  }
  const Rng::State snap = rng.state();
  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) {
    expected.push_back(rng.normal());
  }
  Rng resumed(1);  // different seed: set_state must fully overwrite
  resumed.set_state(snap);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(resumed.normal(), expected[static_cast<std::size_t>(i)]);
  }
}

// ---------- atomic file writes ----------

TEST(AtomicFile, WritesAndReplacesWithoutLeavingTemp) {
  const std::string path = temp_path("cumf_atomic.txt");
  atomic_write_file(path, "first");
  atomic_write_file(path, "second");
  std::ifstream is(path);
  std::string contents;
  std::getline(is, contents);
  EXPECT_EQ(contents, "second");
  EXPECT_FALSE(std::filesystem::exists(atomic_temp_path(path)));
  std::filesystem::remove(path);
}

TEST(AtomicFile, ShortWriteFaultProducesDetectablyTruncatedFile) {
  const std::string path = temp_path("cumf_atomic_short.bin");
  TrainCheckpoint ckpt;
  ckpt.x = Matrix(4, 3, 1.5f);
  ckpt.theta = Matrix(5, 3, -0.5f);
  {
    analysis::FaultPlan plan;
    plan.short_write_bytes = 24;  // past the magic, mid-payload
    analysis::ScopedFaultPlan guard(plan);
    write_checkpoint_file(path, ckpt);
  }
  try {
    read_checkpoint_file(path);
    FAIL() << "torn checkpoint must be rejected";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), CkptReject::truncated);
  }
  std::filesystem::remove(path);
}

// ---------- checkpoint format ----------

TrainCheckpoint sample_checkpoint() {
  TrainCheckpoint ckpt;
  ckpt.epoch = 7;
  Rng rng(99);
  rng.normal();
  ckpt.rng = rng.state();
  ckpt.train_seconds = 12.75;
  ckpt.solve_stats.systems = 1234;
  ckpt.solve_stats.cg_iterations = 5678;
  ckpt.solve_stats.failures = 2;
  ckpt.solve_stats.fp16_converted = 4096;
  ckpt.solve_stats.cg_fallbacks = 3;
  ckpt.solve_stats.fp16_fallbacks = 5;
  ckpt.solve_stats.cg_hist[4] = 100;
  ckpt.solve_stats.cg_hist[SolveStats::kCgHistMax] = 1;
  ckpt.curve = {{1.0, 1.11, 1}, {2.0, 0.95, 2}};
  ckpt.x = Matrix(6, 4);
  ckpt.theta = Matrix(5, 4);
  Rng fill(7);
  for (real_t& v : ckpt.x.data()) {
    v = static_cast<real_t>(fill.normal());
  }
  for (real_t& v : ckpt.theta.data()) {
    v = static_cast<real_t>(fill.normal());
  }
  ckpt.seed = 31;
  ckpt.f = 4;
  ckpt.solver_kind = 3;
  ckpt.cg_fs = 6;
  ckpt.lambda = 0.05f;
  ckpt.rows = 6;
  ckpt.cols = 5;
  ckpt.train_nnz = 17;
  return ckpt;
}

CkptReject reject_reason(const std::string& bytes) {
  try {
    parse_checkpoint(bytes);
  } catch (const CheckpointError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "expected the checkpoint to be rejected";
  return CkptReject::io;
}

TEST(Checkpoint, RoundTripIsBitExact) {
  const TrainCheckpoint before = sample_checkpoint();
  const TrainCheckpoint after = parse_checkpoint(serialize_checkpoint(before));
  EXPECT_EQ(after.epoch, before.epoch);
  EXPECT_EQ(after.rng, before.rng);
  EXPECT_EQ(after.train_seconds, before.train_seconds);
  EXPECT_EQ(after.solve_stats.systems, before.solve_stats.systems);
  EXPECT_EQ(after.solve_stats.cg_iterations,
            before.solve_stats.cg_iterations);
  EXPECT_EQ(after.solve_stats.failures, before.solve_stats.failures);
  EXPECT_EQ(after.solve_stats.fp16_converted,
            before.solve_stats.fp16_converted);
  EXPECT_EQ(after.solve_stats.cg_fallbacks, before.solve_stats.cg_fallbacks);
  EXPECT_EQ(after.solve_stats.fp16_fallbacks,
            before.solve_stats.fp16_fallbacks);
  EXPECT_EQ(after.solve_stats.cg_hist, before.solve_stats.cg_hist);
  ASSERT_EQ(after.curve.size(), before.curve.size());
  for (std::size_t i = 0; i < after.curve.size(); ++i) {
    EXPECT_EQ(after.curve[i].seconds, before.curve[i].seconds);
    EXPECT_EQ(after.curve[i].rmse, before.curve[i].rmse);
    EXPECT_EQ(after.curve[i].epoch, before.curve[i].epoch);
  }
  EXPECT_TRUE(after.x == before.x);
  EXPECT_TRUE(after.theta == before.theta);
  EXPECT_EQ(after.seed, before.seed);
  EXPECT_EQ(after.f, before.f);
  EXPECT_EQ(after.solver_kind, before.solver_kind);
  EXPECT_EQ(after.cg_fs, before.cg_fs);
  EXPECT_EQ(after.lambda, before.lambda);
  EXPECT_EQ(after.rows, before.rows);
  EXPECT_EQ(after.cols, before.cols);
  EXPECT_EQ(after.train_nnz, before.train_nnz);
}

TEST(Checkpoint, RejectsBadMagic) {
  std::string bytes = serialize_checkpoint(sample_checkpoint());
  bytes[0] = 'X';
  EXPECT_EQ(reject_reason(bytes), CkptReject::bad_magic);
  EXPECT_EQ(reject_reason("not a checkpoint at all"), CkptReject::bad_magic);
}

TEST(Checkpoint, RejectsVersionSkew) {
  std::string bytes = serialize_checkpoint(sample_checkpoint());
  bytes[8] = static_cast<char>(bytes[8] + 1);
  EXPECT_EQ(reject_reason(bytes), CkptReject::version_skew);
}

TEST(Checkpoint, RejectsTruncation) {
  const std::string bytes = serialize_checkpoint(sample_checkpoint());
  EXPECT_EQ(reject_reason(bytes.substr(0, bytes.size() / 2)),
            CkptReject::truncated);
  EXPECT_EQ(reject_reason(bytes.substr(0, 10)), CkptReject::truncated);
}

TEST(Checkpoint, RejectsCorruptedPayload) {
  std::string bytes = serialize_checkpoint(sample_checkpoint());
  bytes[bytes.size() / 2] ^= 0x40;  // deep inside the payload
  EXPECT_EQ(reject_reason(bytes), CkptReject::bad_crc);
}

TEST(Checkpoint, FileRoundTripAndIoRejection) {
  const std::string path = temp_path("cumf_ckpt_roundtrip.bin");
  write_checkpoint_file(path, sample_checkpoint());
  const TrainCheckpoint back = read_checkpoint_file(path);
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_FALSE(std::filesystem::exists(atomic_temp_path(path)));
  std::filesystem::remove(path);
  try {
    read_checkpoint_file(path);
    FAIL() << "missing file must be rejected";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.reason(), CkptReject::io);
  }
}

TEST(Checkpoint, LatestAndPrune) {
  const std::string dir = temp_path("cumf_ckpt_dir");
  std::filesystem::create_directories(dir);
  TrainCheckpoint ckpt = sample_checkpoint();
  for (const int epoch : {2, 4, 1, 3}) {
    ckpt.epoch = static_cast<std::uint32_t>(epoch);
    write_checkpoint_file(checkpoint_path(dir, epoch), ckpt);
  }
  const auto latest = latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, checkpoint_path(dir, 4));
  prune_checkpoints(dir, 2);
  EXPECT_FALSE(std::filesystem::exists(checkpoint_path(dir, 1)));
  EXPECT_FALSE(std::filesystem::exists(checkpoint_path(dir, 2)));
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(dir, 3)));
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(dir, 4)));
  std::filesystem::remove_all(dir);
  EXPECT_FALSE(latest_checkpoint(dir).has_value());
}

TEST(Checkpoint, PruneCollectsTmpOrphans) {
  // An atomic write that crashes between create and rename strands a
  // "ckpt-*.bin.tmp.<pid>" file. It is never a resume target, and pruning
  // must collect it regardless of the keep window.
  const std::string dir = temp_path("cumf_ckpt_orphans");
  std::filesystem::create_directories(dir);
  TrainCheckpoint ckpt = sample_checkpoint();
  for (const int epoch : {1, 2}) {
    ckpt.epoch = static_cast<std::uint32_t>(epoch);
    write_checkpoint_file(checkpoint_path(dir, epoch), ckpt);
  }
  const std::string orphan = atomic_temp_path(checkpoint_path(dir, 3));
  std::ofstream(orphan, std::ios::binary) << "half-written";
  ASSERT_TRUE(std::filesystem::exists(orphan));

  prune_checkpoints(dir, 2);
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(dir, 1)));
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(dir, 2)));
  // The orphan must not count against the keep window, and a resume still
  // lands on the newest complete checkpoint.
  const auto latest = latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, checkpoint_path(dir, 2));
  std::filesystem::remove_all(dir);
}

// ---------- model / ratings I/O hardening ----------

TEST(ModelIo, WriteMatrixRestoresStreamPrecision) {
  std::ostringstream probe;
  probe << 0.123456789;
  const std::string default_format = probe.str();

  std::ostringstream os;
  Matrix m(1, 1);
  m(0, 0) = 0.1f;
  write_matrix(os, m);
  os.str("");
  os << 0.123456789;
  // Regression: write_matrix used to leave the caller's stream at
  // max_digits10 permanently.
  EXPECT_EQ(os.str(), default_format);
}

TEST(ModelIo, FileRoundTripIsBitExact) {
  FactorModel model;
  model.x = Matrix(9, 5);
  model.theta = Matrix(7, 5);
  Rng rng(11);
  for (real_t& v : model.x.data()) {
    v = static_cast<real_t>(rng.normal(0.0, 2.0));
  }
  for (real_t& v : model.theta.data()) {
    v = static_cast<real_t>(rng.normal(0.0, 2.0));
  }
  const std::string path = temp_path("cumf_model_roundtrip.txt");
  write_model_file(path, model);
  EXPECT_FALSE(std::filesystem::exists(atomic_temp_path(path)));
  const FactorModel back = read_model_file(path);
  // max_digits10 formatting makes the text round trip lossless.
  EXPECT_TRUE(back.x == model.x);
  EXPECT_TRUE(back.theta == model.theta);
  std::filesystem::remove(path);
}

TEST(RatingsIo, RejectsNegativeHeaderNnz) {
  std::istringstream is("2 2 -1\n");
  EXPECT_THROW(read_ratings(is), CheckError);
}

TEST(RatingsIo, TruncatedStreamNamesThePromise) {
  std::istringstream is("2 2 5\n0 0 3.0\n1 1 4.0\n");
  try {
    read_ratings(is);
    FAIL() << "truncated ratings must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("promises 5"), std::string::npos);
  }
}

TEST(RatingsIo, FileWriteIsAtomic) {
  RatingsCoo coo(2, 2);
  coo.add(0, 0, 1.0f);
  coo.add(1, 1, 2.0f);
  const std::string path = temp_path("cumf_ratings_atomic.txt");
  write_ratings_file(path, coo);
  EXPECT_FALSE(std::filesystem::exists(atomic_temp_path(path)));
  const RatingsCoo back = read_ratings_file(path);
  EXPECT_EQ(back.nnz(), 2u);
  std::filesystem::remove(path);
}

// ---------- solver graceful degradation ----------

TEST(SolverDegradation, CgBreakdownFallsBackToExactLu) {
  SolverOptions opts;
  opts.kind = SolverKind::CgFp32;
  SystemSolver solver(2, opts);
  // Indefinite A = diag(1, -1) with b = (1, 1) and a zero warm start makes
  // the first CG direction p = r = (1, 1), so pᵀAp = 0: breakdown on step 1.
  const std::vector<real_t> a = {1.0f, 0.0f, 0.0f, -1.0f};
  const std::vector<real_t> b = {1.0f, 1.0f};
  std::vector<real_t> x = {0.0f, 0.0f};
  ASSERT_TRUE(solver.solve(a, b, x));
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -1.0f);
  EXPECT_EQ(solver.stats().cg_fallbacks, 1u);
  EXPECT_EQ(solver.stats().failures, 0u);
}

TEST(SolverDegradation, PcgDegradesOnNonPositiveDiagonal) {
  // pcg_solve itself throws on a non-positive diagonal (its documented
  // contract); the SystemSolver pre-screens and reroutes to LU instead.
  SolverOptions opts;
  opts.kind = SolverKind::PcgFp32;
  SystemSolver solver(2, opts);
  const std::vector<real_t> a = {1.0f, 0.0f, 0.0f, -1.0f};
  const std::vector<real_t> b = {2.0f, 3.0f};
  std::vector<real_t> x = {0.0f, 0.0f};
  ASSERT_TRUE(solver.solve(a, b, x));
  EXPECT_FLOAT_EQ(x[0], 2.0f);
  EXPECT_FLOAT_EQ(x[1], -3.0f);
  EXPECT_EQ(solver.stats().cg_fallbacks, 1u);
}

TEST(SolverDegradation, Fp16OverflowRetriesInFp32) {
  SolverOptions opts;
  opts.kind = SolverKind::CgFp16;
  opts.cg_fs = 8;
  SystemSolver solver(2, opts);
  // 70000 > half::max() = 65504: the FP16 pack overflows to inf and the
  // solver must redo the system with A kept in FP32.
  const std::vector<real_t> a = {70000.0f, 0.0f, 0.0f, 70000.0f};
  const std::vector<real_t> b = {70000.0f, 140000.0f};
  std::vector<real_t> x = {0.0f, 0.0f};
  ASSERT_TRUE(solver.solve(a, b, x));
  EXPECT_NEAR(x[0], 1.0f, 1e-4f);
  EXPECT_NEAR(x[1], 2.0f, 1e-4f);
  EXPECT_EQ(solver.stats().fp16_fallbacks, 1u);
  EXPECT_EQ(solver.stats().cg_fallbacks, 0u);
  EXPECT_EQ(solver.stats().failures, 0u);
}

TEST(SolverDegradation, NanSystemFailsCleanlyAndRestoresX) {
  SolverOptions opts;
  opts.kind = SolverKind::CgFp32;
  SystemSolver solver(2, opts);
  const std::vector<real_t> a = {std::nanf(""), 0.0f, 0.0f, 1.0f};
  const std::vector<real_t> b = {1.0f, 1.0f};
  std::vector<real_t> x = {-7.0f, 3.0f};
  EXPECT_FALSE(solver.solve(a, b, x));
  // CG broke down, the exact fallback produced non-finite output, and the
  // caller's warm start came back untouched.
  EXPECT_FLOAT_EQ(x[0], -7.0f);
  EXPECT_FLOAT_EQ(x[1], 3.0f);
  EXPECT_EQ(solver.stats().cg_fallbacks, 1u);
  EXPECT_EQ(solver.stats().failures, 1u);
}

// ---------- fault injection ----------

TEST(FaultInjection, DisarmedInjectorIsInert) {
  EXPECT_FALSE(analysis::FaultInjector::enabled());
  {
    analysis::FaultPlan plan;
    plan.nan_a_prob = 1.0;
    analysis::ScopedFaultPlan guard(plan);
    EXPECT_TRUE(analysis::FaultInjector::enabled());
  }
  EXPECT_FALSE(analysis::FaultInjector::enabled());
}

TEST(FaultInjection, DecisionsAreDeterministic) {
  analysis::FaultPlan plan;
  plan.seed = 7;
  plan.nan_a_prob = 0.3;
  const auto run = [&plan]() {
    std::vector<bool> pattern;
    analysis::ScopedFaultPlan guard(plan);
    for (index_t row = 0; row < 200; ++row) {
      std::vector<real_t> a(4, 1.0f);
      std::vector<real_t> b(2, 1.0f);
      analysis::FaultInjector::instance().corrupt_system(0, row, a, b);
      pattern.push_back(std::isnan(a[0]) || std::isnan(a[1]) ||
                        std::isnan(a[2]) || std::isnan(a[3]));
    }
    return pattern;
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  EXPECT_GT(std::count(first.begin(), first.end(), true), 0);
  EXPECT_LT(std::count(first.begin(), first.end(), true), 200);
}

// ---------- AlsEngine: hooks, restore, training under faults ----------

RatingsCoo tiny_ratings() {
  SyntheticConfig cfg;
  cfg.m = 60;
  cfg.n = 40;
  cfg.nnz = 900;
  cfg.true_rank = 4;
  cfg.mean = 3.5;
  cfg.seed = 5;
  return generate_synthetic(cfg).ratings;
}

AlsOptions tiny_options(SolverKind kind) {
  AlsOptions options;
  options.f = 8;
  options.lambda = 0.05f;
  options.solver.kind = kind;
  options.workers = 2;
  options.seed = 1;
  return options;
}

TEST(AlsResume, EpochHookFiresWithTheNewCounter) {
  AlsEngine engine(tiny_ratings(), tiny_options(SolverKind::CgFp32));
  std::vector<int> seen;
  engine.set_epoch_hook([&seen](int epoch) { seen.push_back(epoch); });
  engine.run_epoch();
  engine.run_epoch();
  engine.run_epoch();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(AlsResume, RestoredRunIsBitIdenticalToUninterrupted) {
  const RatingsCoo ratings = tiny_ratings();
  const AlsOptions options = tiny_options(SolverKind::CgFp16);

  AlsEngine uninterrupted(ratings, options);
  for (int i = 0; i < 4; ++i) {
    uninterrupted.run_epoch();
  }

  AlsEngine first_half(ratings, options);
  first_half.run_epoch();
  first_half.run_epoch();

  // A brand-new engine (fresh init, fresh solver stats) picks up from the
  // snapshot and must land exactly where the uninterrupted run did.
  AlsEngine second_half(ratings, options);
  second_half.restore(first_half.user_factors(), first_half.item_factors(),
                      first_half.epochs_run(), first_half.solve_stats());
  second_half.run_epoch();
  second_half.run_epoch();

  EXPECT_EQ(second_half.epochs_run(), 4);
  EXPECT_TRUE(second_half.user_factors() == uninterrupted.user_factors());
  EXPECT_TRUE(second_half.item_factors() == uninterrupted.item_factors());
  // The restored baseline makes cumulative stats span the whole logical run.
  EXPECT_EQ(second_half.solve_stats().systems,
            uninterrupted.solve_stats().systems);
  EXPECT_EQ(second_half.solve_stats().cg_iterations,
            uninterrupted.solve_stats().cg_iterations);
}

TEST(AlsResume, RestoreRejectsWrongShapes) {
  AlsEngine engine(tiny_ratings(), tiny_options(SolverKind::CgFp32));
  EXPECT_THROW(engine.restore(Matrix(3, 3), engine.item_factors(), 1),
               CheckError);
}

TEST(AlsFaults, TrainingSurvivesInjectedFaultsWithFiniteFactors) {
  analysis::FaultPlan plan;
  plan.seed = 13;
  plan.nan_a_prob = 0.01;
  plan.indefinite_a_prob = 0.03;
  plan.fp16_overflow_prob = 0.03;
  analysis::ScopedFaultPlan guard(plan);

  AlsEngine engine(tiny_ratings(), tiny_options(SolverKind::CgFp16));
  engine.run_epoch();
  engine.run_epoch();

  const SolveStats stats = engine.solve_stats();
  // Indefinite and NaN systems break CG; overflowed diagonals break the
  // FP16 pack; only the NaN systems are unsolvable even exactly.
  EXPECT_GT(stats.cg_fallbacks, 0u);
  EXPECT_GT(stats.fp16_fallbacks, 0u);
  EXPECT_GT(stats.failures, 0u);
  EXPECT_LT(stats.failures, stats.systems);
  // The degradation ladder must keep every factor finite: failed rows keep
  // their previous (finite) value instead of absorbing NaN.
  EXPECT_TRUE(all_finite(engine.user_factors()));
  EXPECT_TRUE(all_finite(engine.item_factors()));
}

TEST(AlsFaults, FaultCountsAreScheduleInvariant) {
  analysis::FaultPlan plan;
  plan.seed = 21;
  plan.indefinite_a_prob = 0.05;
  const auto run = [&plan](int workers, AlsSchedule schedule) {
    analysis::ScopedFaultPlan guard(plan);
    AlsOptions options = tiny_options(SolverKind::CgFp32);
    options.workers = workers;
    options.schedule = schedule;
    AlsEngine engine(tiny_ratings(), options);
    engine.run_epoch();
    return engine.solve_stats();
  };
  const SolveStats serial = run(1, AlsSchedule::static_rows);
  const SolveStats guided = run(3, AlsSchedule::nnz_guided);
  EXPECT_GT(serial.cg_fallbacks, 0u);
  EXPECT_EQ(serial.cg_fallbacks, guided.cg_fallbacks);
  EXPECT_EQ(serial.failures, guided.failures);
}

}  // namespace
}  // namespace cumf
