// Out-of-core layer: shard store round-trip and rejection taxonomy, the
// serpentine block schedule, the bounded tile cache, and the streamed
// engine's bit-identity to AlsEngine (the same regression bar the multi-GPU
// engine meets). The CLI-level leg (cumf_shard build → streamed train →
// cmp against in-core, plus crash/resume) runs in tools/CMakeLists.txt.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/faultinject.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/ooc_als.hpp"
#include "data/generator.hpp"
#include "data/shards.hpp"
#include "sparse/split.hpp"

namespace cumf {
namespace {

std::string temp_dir(const std::string& name) {
  // Suffix with the pid: ctest runs each parameterized instance as its own
  // process, and concurrent instances sharing one directory race remove_all.
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   (name + "-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

RatingsCoo tiny_ratings() {
  SyntheticConfig cfg;
  cfg.m = 90;
  cfg.n = 50;
  cfg.nnz = 1400;
  cfg.true_rank = 4;
  cfg.mean = 3.5;
  cfg.seed = 5;
  return generate_synthetic(cfg).ratings;
}

AlsOptions tiny_options(SolverKind kind = SolverKind::CgFp32) {
  AlsOptions options;
  options.f = 8;
  options.lambda = 0.05f;
  options.solver.kind = kind;
  options.workers = 2;
  options.seed = 3;
  return options;
}

ShardBuildOptions tiny_build() {
  ShardBuildOptions options;
  options.tiles = 4;
  options.test_fraction = 0.1;
  options.seed = 3;
  return options;
}

/// The canonical train split the shard build replays — what an in-core
/// engine of the same seed/test fraction trains on.
RatingsCoo in_core_train(const RatingsCoo& all, const ShardBuildOptions& b) {
  Rng rng(b.seed);
  return split_holdout(all, b.test_fraction, rng).train;
}

bool same_bits(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(real_t)) == 0;
}

// ---------- Shard store round-trip ----------

TEST(ShardStore, MetaAndTilesRoundTrip) {
  const std::string dir = temp_dir("shard_roundtrip");
  const RatingsCoo all = tiny_ratings();
  const ShardBuildOptions build = tiny_build();
  const ShardMeta written = write_shards(dir, all, build);

  EXPECT_TRUE(is_shard_dir(dir));
  const ShardMeta meta = read_shard_meta(dir);
  EXPECT_EQ(meta.rows, written.rows);
  EXPECT_EQ(meta.cols, written.cols);
  EXPECT_EQ(meta.train_nnz, written.train_nnz);
  EXPECT_EQ(meta.test_nnz, written.test_nnz);
  EXPECT_EQ(meta.mean, written.mean);  // bit-exact double round-trip
  EXPECT_EQ(meta.seed, build.seed);
  EXPECT_EQ(meta.row_tiles, written.row_tiles);
  EXPECT_EQ(meta.col_tiles, written.col_tiles);

  // Concatenating the by-row tiles must reproduce the canonical train CSR
  // exactly: same split, same dedup, same value bits.
  RatingsCoo canonical = in_core_train(all, build);
  canonical.sort_and_dedup();
  const CsrMatrix csr = CsrMatrix::from_coo(canonical);
  nnz_t seen = 0;
  index_t row = 0;
  for (std::size_t i = 0; i < meta.row_tiles.size(); ++i) {
    const CsrTile tile =
        load_tile(dir, TileView::by_row, i, meta.row_tiles[i]);
    EXPECT_EQ(tile.row_begin, row);
    for (index_t u = 0; u < tile.csr.rows(); ++u) {
      const auto cols = tile.csr.row_cols(u);
      const auto vals = tile.csr.row_vals(u);
      const auto want_cols = csr.row_cols(row + u);
      const auto want_vals = csr.row_vals(row + u);
      ASSERT_EQ(cols.size(), want_cols.size());
      EXPECT_TRUE(std::memcmp(cols.data(), want_cols.data(),
                              cols.size() * sizeof(index_t)) == 0);
      EXPECT_TRUE(std::memcmp(vals.data(), want_vals.data(),
                              vals.size() * sizeof(real_t)) == 0);
    }
    row = tile.row_end;
    seen += tile.csr.nnz();
  }
  EXPECT_EQ(row, meta.rows);
  EXPECT_EQ(seen, meta.train_nnz);

  const RatingsCoo test = read_shard_test(dir);
  EXPECT_EQ(test.nnz(), meta.test_nnz);
}

// ---------- Rejection taxonomy ----------

/// Byte-level surgery on a framed shard file. Payload starts at offset 20;
/// the trailing 4 bytes are the payload CRC.
std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ShardRejectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = temp_dir("shard_reject");
    meta_ = write_shards(dir_, tiny_ratings(), tiny_build());
    tile_ = tile_path(dir_, TileView::by_row, 0);
  }

  ShardReject load_reason() {
    try {
      load_tile(dir_, TileView::by_row, 0, meta_.row_tiles[0]);
    } catch (const ShardError& e) {
      return e.reason();
    }
    ADD_FAILURE() << "tile unexpectedly accepted";
    return ShardReject::io;
  }

  std::string dir_;
  ShardMeta meta_;
  std::string tile_;
};

TEST_F(ShardRejectTest, PayloadCorruptionIsBadCrc) {
  std::string bytes = read_file(tile_);
  bytes[bytes.size() / 2] ^= 0x5a;  // mid-payload bit flips
  write_file(tile_, bytes);
  EXPECT_EQ(load_reason(), ShardReject::bad_crc);
}

TEST_F(ShardRejectTest, WrongMagicIsBadMagic) {
  std::string bytes = read_file(tile_);
  bytes.replace(0, 8, "NOTATILE");
  write_file(tile_, bytes);
  EXPECT_EQ(load_reason(), ShardReject::bad_magic);
}

TEST_F(ShardRejectTest, TornWriteIsTruncated) {
  const std::string bytes = read_file(tile_);
  write_file(tile_, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(load_reason(), ShardReject::truncated);
}

TEST_F(ShardRejectTest, FutureVersionIsVersionSkew) {
  std::string bytes = read_file(tile_);
  const std::uint32_t future = kShardVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  write_file(tile_, bytes);
  EXPECT_EQ(load_reason(), ShardReject::version_skew);
}

TEST_F(ShardRejectTest, ValidButWrongTileIsMismatch) {
  // A perfectly valid file under the wrong name: framing passes, the
  // cross-check against the manifest must still reject it.
  std::filesystem::copy_file(
      tile_path(dir_, TileView::by_row, 1), tile_,
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_EQ(load_reason(), ShardReject::mismatch);
}

TEST_F(ShardRejectTest, CrcValidGarbagePayloadIsMalformed) {
  // Corrupt the view tag, then repair the CRC: the frame is self-consistent
  // but the payload no longer parses.
  std::string bytes = read_file(tile_);
  bytes[20] = 7;  // view tag: must be 0 or 1
  const std::size_t payload_len = bytes.size() - 20 - 4;
  const std::uint32_t fixed = crc32(0, bytes.data() + 20, payload_len);
  std::memcpy(bytes.data() + bytes.size() - 4, &fixed, sizeof(fixed));
  write_file(tile_, bytes);
  EXPECT_EQ(load_reason(), ShardReject::malformed);
}

TEST_F(ShardRejectTest, MissingFileIsIo) {
  std::filesystem::remove(tile_);
  EXPECT_EQ(load_reason(), ShardReject::io);
}

TEST_F(ShardRejectTest, ReasonsAreNamed) {
  EXPECT_STREQ(to_string(ShardReject::bad_crc), "corrupted (CRC mismatch)");
  EXPECT_STREQ(to_string(ShardReject::version_skew),
               "incompatible format version");
  EXPECT_STREQ(to_string(ShardReject::mismatch),
               "belongs to a different tile or shard store");
}

TEST_F(ShardRejectTest, BufferedReadPathRejectsToo) {
  std::string bytes = read_file(tile_);
  bytes[bytes.size() / 2] ^= 0x5a;
  write_file(tile_, bytes);
  try {
    load_tile(dir_, TileView::by_row, 0, meta_.row_tiles[0],
              /*use_mmap=*/false);
    ADD_FAILURE() << "tile unexpectedly accepted";
  } catch (const ShardError& e) {
    EXPECT_EQ(e.reason(), ShardReject::bad_crc);
  }
}

// ---------- Block schedule ----------

TEST(TileSchedule, SerpentineAndDeterministic) {
  EXPECT_EQ(ooc_tile_order(4, 0), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(ooc_tile_order(4, 1), (std::vector<std::size_t>{3, 2, 1, 0}));
  EXPECT_EQ(ooc_tile_order(4, 2), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(ooc_tile_order(1, 5), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(ooc_tile_order(0, 0).empty());
  // Pure function of (tiles, sweep): identical on every call — the property
  // that makes the schedule independent of worker count and prefetch state.
  EXPECT_EQ(ooc_tile_order(7, 3), ooc_tile_order(7, 3));
}

// ---------- Tile cache ----------

TEST(TileCache, BudgetIsHardAndEvictionIsLru) {
  const std::string dir = temp_dir("cache_budget");
  const ShardMeta meta = write_shards(dir, tiny_ratings(), tiny_build());
  std::uint64_t largest = 0;
  std::uint64_t total = 0;
  for (const TileRange& t : meta.row_tiles) {
    largest = std::max(largest, tile_resident_bytes(t));
    total += tile_resident_bytes(t);
  }
  ASSERT_GT(meta.row_tiles.size(), 2u);

  // Budget below the largest tile can never hold a working set: reject at
  // construction instead of thrashing.
  EXPECT_THROW(TileCache(dir, meta, TileCacheOptions{largest - 1}),
               CheckError);

  // A two-tile budget streams the whole view while staying under budget.
  TileCache cache(dir, meta, TileCacheOptions{2 * largest});
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < meta.row_tiles.size(); ++i) {
      const auto tile = cache.get(TileView::by_row, i);
      EXPECT_EQ(tile->index, i);
      EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
    }
  }
  const TileCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.bytes_loaded, 0u);

  // Everything fits → second pass is all hits.
  TileCache big(dir, meta, TileCacheOptions{2 * total});
  for (std::size_t i = 0; i < meta.row_tiles.size(); ++i) {
    (void)big.get(TileView::by_row, i);
  }
  const std::uint64_t misses_after_fill = big.stats().misses;
  for (std::size_t i = 0; i < meta.row_tiles.size(); ++i) {
    (void)big.get(TileView::by_row, i);
  }
  EXPECT_EQ(big.stats().misses, misses_after_fill);
  EXPECT_EQ(big.stats().hits, meta.row_tiles.size());
}

// ---------- Streamed engine: bit-identity ----------

struct OocCase {
  int workers;
  bool overlap;
  bool use_mmap;
  bool tight_budget;
  SolverKind solver;
};

class OocBitIdentity : public ::testing::TestWithParam<OocCase> {};

TEST_P(OocBitIdentity, MatchesInCoreAlsEngine) {
  const OocCase& c = GetParam();
  const std::string dir = temp_dir("ooc_bitident");
  const RatingsCoo all = tiny_ratings();
  const ShardBuildOptions build = tiny_build();
  const ShardMeta meta = write_shards(dir, all, build);

  AlsOptions options = tiny_options(c.solver);
  options.workers = c.workers;
  AlsEngine reference(in_core_train(all, build), options);

  std::uint64_t largest = 0;
  for (const auto* table : {&meta.row_tiles, &meta.col_tiles}) {
    for (const TileRange& t : *table) {
      largest = std::max(largest, tile_resident_bytes(t));
    }
  }
  OocOptions ooc;
  ooc.host_mem_bytes = c.tight_budget ? 2 * largest : std::uint64_t{1} << 30;
  ooc.overlap = c.overlap;
  ooc.use_mmap = c.use_mmap;
  OocAlsEngine streamed(dir, options, ooc);
  EXPECT_EQ(streamed.overlap_active(), c.overlap);

  for (int epoch = 0; epoch < 3; ++epoch) {
    reference.run_epoch();
    streamed.run_epoch();
    EXPECT_TRUE(same_bits(reference.user_factors(), streamed.user_factors()))
        << "epoch " << epoch;
    EXPECT_TRUE(same_bits(reference.item_factors(), streamed.item_factors()))
        << "epoch " << epoch;
  }
  // The integer solve counters must agree too (they feed checkpoints).
  const SolveStats a = reference.solve_stats();
  const SolveStats b = streamed.solve_stats();
  EXPECT_EQ(a.systems, b.systems);
  EXPECT_EQ(a.cg_iterations, b.cg_iterations);
  EXPECT_EQ(a.cg_fallbacks, b.cg_fallbacks);
  EXPECT_EQ(a.fp16_fallbacks, b.fp16_fallbacks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OocBitIdentity,
    ::testing::Values(
        OocCase{1, true, true, true, SolverKind::CgFp32},
        OocCase{4, true, true, true, SolverKind::CgFp32},
        OocCase{4, false, true, true, SolverKind::CgFp32},
        OocCase{2, true, false, true, SolverKind::CgFp32},
        OocCase{2, true, true, false, SolverKind::CgFp16},
        OocCase{3, false, false, false, SolverKind::CholeskyFp32}));

TEST(OocEngine, RestoreContinuesBitIdentically) {
  const std::string dir = temp_dir("ooc_restore");
  const RatingsCoo all = tiny_ratings();
  write_shards(dir, all, tiny_build());
  const AlsOptions options = tiny_options(SolverKind::CgFp16);
  OocOptions ooc;
  ooc.host_mem_bytes = std::uint64_t{1} << 30;

  OocAlsEngine uninterrupted(dir, options, ooc);
  for (int i = 0; i < 2; ++i) {
    uninterrupted.run_epoch();
  }
  const Matrix snap_x = uninterrupted.user_factors();
  const Matrix snap_theta = uninterrupted.item_factors();
  const SolveStats snap_stats = uninterrupted.solve_stats();
  for (int i = 0; i < 2; ++i) {
    uninterrupted.run_epoch();
  }

  // A fresh engine restored from the snapshot re-enters the serpentine
  // schedule at the right sweep parity and lands on identical bits.
  OocAlsEngine resumed(dir, options, ooc);
  resumed.restore(snap_x, snap_theta, 2, snap_stats);
  for (int i = 0; i < 2; ++i) {
    resumed.run_epoch();
  }
  EXPECT_EQ(resumed.epochs_run(), 4);
  EXPECT_TRUE(same_bits(uninterrupted.user_factors(),
                        resumed.user_factors()));
  EXPECT_TRUE(same_bits(uninterrupted.item_factors(),
                        resumed.item_factors()));
  EXPECT_EQ(uninterrupted.solve_stats().systems,
            resumed.solve_stats().systems);
}

TEST(OocEngine, FaultInjectionHitsTheSameGlobalRows) {
  // Fault decisions hash (seed, site, global row): the streamed engine must
  // pass global row ids through tile-local updates, or injected faults land
  // on different rows and the degradation ladder diverges from in-core.
  const std::string dir = temp_dir("ooc_faults");
  const RatingsCoo all = tiny_ratings();
  const ShardBuildOptions build = tiny_build();
  write_shards(dir, all, build);
  const AlsOptions options = tiny_options(SolverKind::CgFp32);

  analysis::FaultPlan plan;
  plan.seed = 11;
  plan.indefinite_a_prob = 0.05;
  Matrix ref_x, ref_theta;
  std::uint64_t ref_fallbacks = 0;
  {
    analysis::ScopedFaultPlan armed(plan);
    AlsEngine reference(in_core_train(all, build), options);
    for (int i = 0; i < 2; ++i) {
      reference.run_epoch();
    }
    ref_x = reference.user_factors();
    ref_theta = reference.item_factors();
    ref_fallbacks = reference.solve_stats().cg_fallbacks;
  }
  {
    analysis::ScopedFaultPlan armed(plan);
    OocOptions ooc;
    ooc.host_mem_bytes = std::uint64_t{1} << 30;
    OocAlsEngine streamed(dir, options, ooc);
    for (int i = 0; i < 2; ++i) {
      streamed.run_epoch();
    }
    EXPECT_GT(streamed.solve_stats().cg_fallbacks, 0u);
    EXPECT_EQ(streamed.solve_stats().cg_fallbacks, ref_fallbacks);
    EXPECT_TRUE(same_bits(ref_x, streamed.user_factors()));
    EXPECT_TRUE(same_bits(ref_theta, streamed.item_factors()));
  }
}

TEST(OocEngine, EpochStatsAndTimelineArePopulated) {
  const std::string dir = temp_dir("ooc_stats");
  write_shards(dir, tiny_ratings(), tiny_build());
  OocOptions ooc;
  ooc.host_mem_bytes = std::uint64_t{1} << 30;
  OocAlsEngine engine(dir, tiny_options(), ooc);
  engine.run_epoch();

  const OocEpochStats& stats = engine.ooc_stats_last_epoch();
  EXPECT_EQ(stats.tiles,
            engine.meta().row_tiles.size() + engine.meta().col_tiles.size());
  EXPECT_GT(stats.compute_s, 0.0);
  EXPECT_GT(stats.bytes_loaded, 0u);

  const OocTimeline tl = engine.epoch_timeline(
      gpusim::DeviceSpec::pascal_p100(), AlsKernelConfig{},
      gpusim::LinkSpec::pcie3(), /*overlap=*/true);
  EXPECT_GT(tl.transfer_s, 0.0);
  EXPECT_GT(tl.compute_s, 0.0);
  EXPECT_GE(tl.serial_s, tl.pipelined_s);
  EXPECT_GE(tl.overlap_gain, 1.0);
  // The ablation timeline degenerates to the serial sum.
  const OocTimeline flat = engine.epoch_timeline(
      gpusim::DeviceSpec::pascal_p100(), AlsKernelConfig{},
      gpusim::LinkSpec::pcie3(), /*overlap=*/false);
  EXPECT_DOUBLE_EQ(flat.pipelined_s, flat.serial_s);
}

}  // namespace
}  // namespace cumf
