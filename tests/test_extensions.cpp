// Tests for the extension modules: ranking metrics, model persistence,
// parallel ALS workers, the algorithm selector, the hybrid ALS+SGD engine,
// FP16 staging / Tensor-Core modelling, and the Volta device preset.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/hybrid.hpp"
#include "core/kernel_stats.hpp"
#include "core/implicit_als.hpp"
#include "core/selector.hpp"
#include "data/generator.hpp"
#include "data/implicit.hpp"
#include "data/model_io.hpp"
#include "metrics/ranking.hpp"
#include "metrics/rmse.hpp"
#include "sparse/split.hpp"

namespace cumf {
namespace {

SyntheticDataset dataset(std::uint64_t seed = 71, nnz_t nnz = 8000) {
  SyntheticConfig cfg;
  cfg.m = 300;
  cfg.n = 120;
  cfg.nnz = nnz;
  cfg.true_rank = 4;
  cfg.mean = 3.5;
  cfg.signal_std = 0.7;
  cfg.noise_std = 0.25;
  cfg.seed = seed;
  return generate_synthetic(cfg);
}

AlsOptions als_options(int workers = 1) {
  AlsOptions options;
  options.f = 16;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  options.workers = workers;
  return options;
}

// ---------- ranking ----------

TEST(Ranking, TopKExcludesSeenAndOrdersByScore) {
  Matrix x(1, 2);
  Matrix theta(4, 2);
  x(0, 0) = 1;
  theta(0, 0) = 4;  // seen
  theta(1, 0) = 3;
  theta(2, 0) = 9;
  theta(3, 0) = 1;
  RatingsCoo seen_coo(1, 4);
  seen_coo.add(0, 0, 5.0f);
  const auto seen = CsrMatrix::from_coo(seen_coo);
  const auto top = recommend_top_k(x, theta, seen, 0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 2u);  // score 9
  EXPECT_EQ(top[1].item, 1u);  // score 3; item 0 excluded as seen
}

TEST(Ranking, TopKCapsAtAvailableItems) {
  Matrix x(1, 1, 1.0f);
  Matrix theta(3, 1, 1.0f);
  RatingsCoo seen_coo(1, 3);
  seen_coo.add(0, 1, 1.0f);
  const auto seen = CsrMatrix::from_coo(seen_coo);
  EXPECT_EQ(recommend_top_k(x, theta, seen, 0, 10).size(), 2u);
  EXPECT_THROW(recommend_top_k(x, theta, seen, 5, 1), CheckError);
}

TEST(Ranking, AucDetectsLearnedPreferences) {
  // AUC separates observed-vs-random for *preference* models: train the
  // implicit engine (explicit-rating models predict values, not exposure,
  // so their observed/random AUC is legitimately near 0.5).
  const auto data = dataset(73);
  const auto implicit = to_implicit(data.ratings, 3.0f, 20.0);
  ImplicitAlsOptions options;
  options.f = 16;
  options.lambda = 0.05f;
  ImplicitAlsEngine als(implicit, options);
  for (int e = 0; e < 6; ++e) {
    als.run_epoch();
  }
  const auto observed = CsrMatrix::from_coo(implicit.interactions);
  Rng rng(3);
  const double trained = auc_observed_vs_random(
      als.user_factors(), als.item_factors(), observed, 4000, rng);
  // Untrained random factors have no preference signal.
  Matrix rx(300, 16);  // untrained reference factors
  Matrix rt(120, 16);
  Rng init(5);
  for (auto& v : rx.data()) {
    v = static_cast<real_t>(init.normal());
  }
  for (auto& v : rt.data()) {
    v = static_cast<real_t>(init.normal());
  }
  Rng rng2(7);
  const double random =
      auc_observed_vs_random(rx, rt, observed, 4000, rng2);
  EXPECT_GT(trained, 0.75);
  EXPECT_NEAR(random, 0.5, 0.06);
}

TEST(Ranking, PrecisionAtKFindsHeldOutItems) {
  // Train on a planted-preference dataset, hold out some interactions and
  // check the recommender surfaces them above random.
  const auto data = dataset(79, 9000);
  Rng rng(11);
  const auto split = split_holdout(data.ratings, 0.2, rng);
  AlsEngine als(split.train, als_options());
  for (int e = 0; e < 8; ++e) {
    als.run_epoch();
  }
  const auto seen = CsrMatrix::from_coo(split.train);
  const auto held = CsrMatrix::from_coo(split.test);
  const double p = precision_at_k(als.user_factors(), als.item_factors(),
                                  seen, held, 10);
  // Random guessing would score ~k/n ≈ 10/120 ≈ 0.083 on average; the
  // trained model must beat that clearly (explicit-rating top-k is a value
  // predictor, so the lift is real but moderate).
  EXPECT_GT(p, 0.12);
}

// ---------- model I/O ----------

TEST(ModelIo, RoundTripPreservesFactorsExactly) {
  const auto data = dataset(83, 3000);
  AlsEngine als(data.ratings, als_options());
  als.run_epoch();
  FactorModel model{als.user_factors(), als.item_factors()};
  std::stringstream ss;
  write_model(ss, model);
  const auto back = read_model(ss);
  EXPECT_EQ(back.x, model.x);
  EXPECT_EQ(back.theta, model.theta);
}

TEST(ModelIo, FileRoundTrip) {
  FactorModel model{Matrix(3, 2, 1.5f), Matrix(4, 2, -0.25f)};
  const std::string path = "/tmp/cumf_model_test.txt";
  write_model_file(path, model);
  const auto back = read_model_file(path);
  EXPECT_EQ(back.x, model.x);
  EXPECT_EQ(back.theta, model.theta);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsCorruptInput) {
  std::stringstream bad_magic("not-a-model 1\n");
  EXPECT_THROW(read_model(bad_magic), CheckError);
  std::stringstream bad_version("cumf-model 99\n");
  EXPECT_THROW(read_model(bad_version), CheckError);
  std::stringstream truncated("cumf-model 1\n2 2\n1 2 3\n");
  EXPECT_THROW(read_model(truncated), CheckError);
  std::stringstream mismatched("cumf-model 1\n1 2\n1 2\n1 3\n1 2 3\n");
  EXPECT_THROW(read_model(mismatched), CheckError);
}

// ---------- parallel ALS ----------

TEST(ParallelAls, WorkersProduceIdenticalFactors) {
  const auto data = dataset(89);
  AlsEngine serial(data.ratings, als_options(1));
  AlsEngine parallel(data.ratings, als_options(4));
  for (int e = 0; e < 3; ++e) {
    serial.run_epoch();
    parallel.run_epoch();
  }
  // Row updates are disjoint and per-row arithmetic is identical → the
  // parallel run is bit-identical, not merely close.
  EXPECT_EQ(serial.user_factors(), parallel.user_factors());
  EXPECT_EQ(serial.item_factors(), parallel.item_factors());
}

TEST(ParallelAls, StatsAggregateAcrossWorkers) {
  const auto data = dataset(97);
  AlsEngine parallel(data.ratings, als_options(3));
  parallel.run_epoch();
  const auto stats = parallel.solve_stats();
  // Every non-empty row and column was solved exactly once.
  EXPECT_EQ(stats.systems, 300u + 120u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(parallel.hermitian_ops_per_epoch().flops, 0.0);
}

// ---------- selector ----------

TEST(Selector, ImplicitFeedbackAlwaysPicksAls) {
  SelectorInput input;
  input.m = 1e6;
  input.n = 1e5;
  input.nnz = 1e8;
  input.implicit_feedback = true;
  const auto d = select_algorithm(gpusim::DeviceSpec::maxwell_titan_x(),
                                  input);
  EXPECT_EQ(d.algorithm, Algorithm::Als);
  EXPECT_GT(d.sgd_time_estimate, d.als_time_estimate);
}

TEST(Selector, SparseSingleGpuCanPreferSgd) {
  // Very sparse matrix, single GPU: SGD's cheap epochs win the estimate.
  SelectorInput input;
  input.m = 5e7;   // Hugewiki-like: enormous row count
  input.n = 4e4;
  input.nnz = 1e8; // but only ~2 ratings per row → tiny hermitian benefit
  input.f = 100;
  input.gpus = 1;
  const auto d = select_algorithm(gpusim::DeviceSpec::maxwell_titan_x(),
                                  input);
  EXPECT_EQ(d.algorithm, Algorithm::Sgd);
}

TEST(Selector, MoreGpusShiftTowardAls) {
  SelectorInput input;
  input.m = 5e7;
  input.n = 4e4;
  input.nnz = 3.1e9;  // Hugewiki
  input.f = 100;
  input.gpus = 1;
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const auto one = select_algorithm(dev, input);
  input.gpus = 4;
  const auto four = select_algorithm(dev, input);
  // With 4 GPUs ALS's estimate improves relative to SGD (Fig. 8's als@4).
  EXPECT_LT(four.als_time_estimate / four.sgd_time_estimate,
            one.als_time_estimate / one.sgd_time_estimate);
}

TEST(Selector, ValidatesInput) {
  SelectorInput bad;
  EXPECT_THROW(
      select_algorithm(gpusim::DeviceSpec::maxwell_titan_x(), bad),
      CheckError);
}

// ---------- hybrid ----------

TEST(Hybrid, StreamedRatingsImproveTheirPredictions) {
  const auto data = dataset(101, 6000);
  HybridOptions options;
  options.als = als_options();
  options.batch_epochs = 6;
  HybridEngine hybrid(data.ratings, options);

  // Stream ratings that contradict the planted model and check the engine
  // tracks them.
  const Rating streamed{5, 7, 5.0f};
  const real_t before = hybrid.predict(streamed.u, streamed.v);
  for (int i = 0; i < 5; ++i) {
    hybrid.observe(streamed);
  }
  const real_t after = hybrid.predict(streamed.u, streamed.v);
  EXPECT_LT(std::abs(5.0f - after), std::abs(5.0f - before));
  EXPECT_EQ(hybrid.observed_count(), 5u);
}

TEST(Hybrid, IncrementalUpdatesPreserveGlobalQuality) {
  const auto data = dataset(103, 8000);
  Rng rng(13);
  const auto split = split_holdout(data.ratings, 0.2, rng);
  HybridOptions options;
  options.als = als_options();
  options.batch_epochs = 8;
  HybridEngine hybrid(split.train, options);

  const double before =
      rmse(split.test, hybrid.user_factors(), hybrid.item_factors());
  // Stream the held-out ratings in: test RMSE on them must improve (they
  // are now observed), without a batch retrain.
  for (const Rating& e : split.test.entries()) {
    hybrid.observe(e);
  }
  const double after =
      rmse(split.test, hybrid.user_factors(), hybrid.item_factors());
  EXPECT_LT(after, before);
}

TEST(Hybrid, RebatchRecommendationAndReset) {
  const auto data = dataset(107, 5000);
  HybridOptions options;
  options.als = als_options();
  options.batch_epochs = 2;
  options.rebatch_threshold = 0.01;  // 1% growth triggers
  HybridEngine hybrid(data.ratings, options);
  EXPECT_FALSE(hybrid.rebatch_recommended());
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {  // 60/5000 > 1%
    hybrid.observe(Rating{static_cast<index_t>(rng.uniform_index(300)),
                          static_cast<index_t>(rng.uniform_index(120)),
                          3.0f});
  }
  EXPECT_TRUE(hybrid.rebatch_recommended());
  EXPECT_EQ(hybrid.batch_phases_run(), 1);
  hybrid.rebatch();
  EXPECT_EQ(hybrid.batch_phases_run(), 2);
  EXPECT_FALSE(hybrid.rebatch_recommended());
}

TEST(Hybrid, RejectsOutOfShapeStream) {
  const auto data = dataset(109, 5000);
  HybridOptions options;
  options.als = als_options();
  options.batch_epochs = 1;
  HybridEngine hybrid(data.ratings, options);
  EXPECT_THROW(hybrid.observe(Rating{999, 0, 1.0f}), CheckError);
}

// ---------- FP16 staging / Tensor Cores / Volta ----------

TEST(TensorCore, Fp16StagingStaysCloseToFp32) {
  const auto data = dataset(113, 4000);
  const auto csr = CsrMatrix::from_coo(data.ratings);
  Matrix theta(csr.cols(), 16);
  Rng rng(19);
  for (auto& v : theta.data()) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  std::vector<real_t> a32(256);
  std::vector<real_t> b32(16);
  std::vector<real_t> a16(256);
  std::vector<real_t> b16(16);
  HermitianWorkspace ws;
  HermitianParams p32{8, 32, false};
  HermitianParams p16{8, 32, true};
  for (index_t u = 0; u < 50; ++u) {
    get_hermitian_row(csr, theta, u, 0.05f, p32, ws, a32, b32);
    get_hermitian_row(csr, theta, u, 0.05f, p16, ws, a16, b16);
    const double deg = csr.row_nnz(u);
    // FP16 inputs perturb each product by ≤ ~2·2⁻¹¹ relative.
    EXPECT_LT(max_abs_diff(a32, a16), 0.01 * (deg + 1.0)) << "u=" << u;
    EXPECT_GT(max_abs_diff(a32, a16), 0.0) << "rounding must be visible";
  }
}

TEST(TensorCore, AlsConvergesWithFp16Staging) {
  const auto data = dataset(127);
  auto options = als_options();
  options.hermitian.fp16_staging = true;
  AlsEngine als(data.ratings, options);
  auto reference_options = als_options();
  AlsEngine reference(data.ratings, reference_options);
  for (int e = 0; e < 8; ++e) {
    als.run_epoch();
    reference.run_epoch();
  }
  const double r16 =
      rmse(data.ratings, als.user_factors(), als.item_factors());
  const double r32 = rmse(data.ratings, reference.user_factors(),
                          reference.item_factors());
  EXPECT_NEAR(r16, r32, 0.02 * r32);
}

TEST(TensorCore, VoltaPresetAndModelledSpeedup) {
  const auto volta = gpusim::DeviceSpec::volta_v100();
  EXPECT_GT(volta.tensor_flops, 10 * volta.peak_flops / 2);
  EXPECT_EQ(gpusim::DeviceSpec::pascal_p100().tensor_flops, 0.0);

  UpdateShape shape{480189, 17770, 99e6};
  AlsKernelConfig base;
  base.solver = SolverKind::CgFp16;
  auto tensor = base;
  tensor.tensor_core_hermitian = true;
  const double t_base =
      update_phase_times(volta, shape, base).compute.seconds;
  const double t_tensor =
      update_phase_times(volta, shape, tensor).compute.seconds;
  EXPECT_LT(t_tensor, t_base / 2.0);  // Tensor Cores cut the compute phase

  // On a device without Tensor Cores the flag is ignored.
  const auto maxwell = gpusim::DeviceSpec::maxwell_titan_x();
  EXPECT_DOUBLE_EQ(update_phase_times(maxwell, shape, tensor).compute.seconds,
                   update_phase_times(maxwell, shape, base).compute.seconds);
}

TEST(TensorCore, VoltaEpochFasterThanPascal) {
  AlsKernelConfig config;
  config.solver = SolverKind::CgFp16;
  config.tensor_core_hermitian = true;
  const double volta = als_epoch_seconds(gpusim::DeviceSpec::volta_v100(),
                                         480189, 17770, 99e6, config);
  AlsKernelConfig pascal_cfg;
  pascal_cfg.solver = SolverKind::CgFp16;
  const double pascal = als_epoch_seconds(gpusim::DeviceSpec::pascal_p100(),
                                          480189, 17770, 99e6, pascal_cfg);
  EXPECT_LT(volta, pascal);
}

}  // namespace
}  // namespace cumf
